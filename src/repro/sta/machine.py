"""The superthreaded machine: thread units + ring + shared L2 (§2.1).

A :class:`Machine` instantiates the hardware of Figure 1: ``n`` thread
units, each with private L1 caches (and sidecar), a unidirectional
communication ring (modelled through the fork/forward costs and the
target-store forwarding the scheduler performs), a shared unified L2,
and the sequential-mode update bus.
"""

from __future__ import annotations

from typing import Dict, List

from ..common.config import MachineConfig, SimParams
from ..common.errors import SimulationError
from ..core.thread_unit import ThreadUnit
from ..mem.coherence import UpdateBus
from ..mem.l2 import SharedL2

__all__ = ["Machine"]


class Machine:
    """A configured superthreaded processor ready to execute programs."""

    __slots__ = (
        "cfg", "params", "l2", "tus", "bus", "head_tu", "tracer", "profiler",
        "sanitizer", "attrib",
    )

    def __init__(
        self,
        cfg: MachineConfig,
        params: SimParams = SimParams(),
        tracer=None,
        profiler=None,
        sanitizer=None,
        attrib=None,
    ) -> None:
        self.cfg = cfg
        self.params = params
        #: Observability sink shared by every component (None → untraced).
        self.tracer = tracer
        #: Host-side wall-clock profiler (None → unprofiled).
        self.profiler = profiler
        #: Runtime invariant checker (None → unsanitized, zero cost).
        self.sanitizer = sanitizer
        #: Block-provenance collector (None → unattributed, zero cost).
        self.attrib = attrib
        self.l2 = SharedL2(cfg.mem, tracer=tracer)
        self.tus: List[ThreadUnit] = [
            ThreadUnit(i, cfg, self.l2, params, tracer=tracer,
                       profiler=profiler, sanitizer=sanitizer, attrib=attrib)
            for i in range(cfg.n_thread_units)
        ]
        self.bus = UpdateBus([tu.mem for tu in self.tus])
        #: The TU currently holding the non-speculative head thread;
        #: sequential code runs here.
        self.head_tu = 0

    @property
    def n_tus(self) -> int:
        return self.cfg.n_thread_units

    def tu_for_iteration(self, global_iter: int) -> ThreadUnit:
        """Round-robin thread-unit assignment by global iteration index."""
        return self.tus[global_iter % self.cfg.n_thread_units]

    def set_head(self, tu_id: int) -> None:
        """Move the head thread to ``tu_id`` (after a region completes)."""
        if not 0 <= tu_id < self.cfg.n_thread_units:
            raise SimulationError(f"no such thread unit: {tu_id}")
        self.head_tu = tu_id

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------

    def collect_stats(self) -> Dict[str, int]:
        """Flatten every component's counters into one mapping."""
        out: Dict[str, int] = {}
        for tu in self.tus:
            out.update(tu.stats.as_dict())
            out.update(tu.mem.stats.as_dict())
            out.update(tu.branch.stats.as_dict())
            out.update(tu.membuf.stats.as_dict())
        out.update(self.l2.stats.as_dict())
        out.update(self.l2.memory.stats.as_dict())
        out.update(self.bus.stats.as_dict())
        return out

    def aggregate(self, counter_name: str) -> int:
        """Sum one per-TU memory counter across all thread units."""
        return sum(tu.mem.stats[counter_name] for tu in self.tus)

    @property
    def l1_traffic(self) -> int:
        """Total processor↔L1D traffic across TUs (Figure 17 numerator)."""
        return sum(tu.mem.l1_traffic for tu in self.tus)

    @property
    def l1_misses(self) -> int:
        """Correct-path L1D misses across TUs."""
        return self.aggregate("l1_misses")

    @property
    def effective_misses(self) -> int:
        """Correct-path misses serviced beyond L1+sidecar (Figure 17)."""
        return sum(tu.mem.effective_misses for tu in self.tus)

    @property
    def mispredicts(self) -> int:
        return sum(tu.branch.stats["mispredicts"] for tu in self.tus)

    @property
    def branches(self) -> int:
        return sum(tu.branch.stats["branches"] for tu in self.tus)

    def reset_statistics(self) -> None:
        """Zero all counters while keeping cache/predictor state.

        Used at the end of the warm-up period: measurement starts from
        warmed microarchitectural state, as in steady-state sampling.
        """
        for tu in self.tus:
            tu.stats.reset()
            tu.mem.stats.reset()
            tu.branch.stats.reset()
            tu.membuf.stats.reset()
        self.l2.stats.reset()
        self.l2.memory.reset()
        self.bus.stats.reset()

    def reset(self) -> None:
        """Return the machine to power-on state."""
        for tu in self.tus:
            tu.reset()
        self.l2.reset()
        self.bus.reset()
        self.head_tu = 0

    def __repr__(self) -> str:
        return f"Machine({self.cfg.describe()})"
