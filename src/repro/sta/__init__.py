"""The superthreaded architecture: machine, scheduler, configurations."""

from .configs import (
    ABLATION_CONFIG_NAMES,
    CONFIG_NAMES,
    TABLE3_ROWS,
    named_config,
    table3_config,
)
from .machine import Machine
from .scheduler import RegionResult, Scheduler

__all__ = [
    "ABLATION_CONFIG_NAMES",
    "CONFIG_NAMES",
    "TABLE3_ROWS",
    "named_config",
    "table3_config",
    "Machine",
    "RegionResult",
    "Scheduler",
]
