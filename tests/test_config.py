"""Tests for configuration dataclasses and their validation."""

from __future__ import annotations

import dataclasses

import pytest

from repro.common.config import (
    BranchPredictorConfig,
    CacheConfig,
    FuncUnitMix,
    MachineConfig,
    MemorySystemConfig,
    SidecarConfig,
    SidecarKind,
    SimParams,
    ThreadUnitConfig,
    WrongExecutionConfig,
)
from repro.common.errors import ConfigError


class TestCacheConfig:
    def test_defaults_valid(self):
        c = CacheConfig()
        assert c.n_blocks == 128
        assert c.n_sets == 128

    def test_string_size(self):
        assert CacheConfig(size="8K").size == 8192

    def test_assoc_geometry(self):
        c = CacheConfig(size=8192, assoc=4, block_size=64)
        assert c.n_sets == 32
        assert c.n_blocks == 128

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(assoc=0),
            dict(block_size=48),
            dict(size=0),
            dict(size=100, assoc=1, block_size=64),
            dict(hit_latency=-1),
            dict(size=192, assoc=1, block_size=64),  # 3 sets: not pow2
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            CacheConfig(**kwargs)

    def test_scaled(self):
        c = CacheConfig(size=8192, assoc=2, block_size=64)
        half = c.scaled(0.5)
        assert half.size == 4096
        half.validate()

    def test_scaled_never_below_granule(self):
        c = CacheConfig(size=256, assoc=1, block_size=64)
        tiny = c.scaled(0.01)
        assert tiny.size == 64

    def test_frozen(self):
        c = CacheConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            c.assoc = 2  # type: ignore[misc]


class TestSidecarConfig:
    def test_none_kind_ignores_entries(self):
        SidecarConfig(kind=SidecarKind.NONE, entries=0)  # allowed

    def test_wec_needs_entries(self):
        with pytest.raises(ConfigError):
            SidecarConfig(kind=SidecarKind.WEC, entries=0)


class TestBranchPredictorConfig:
    def test_defaults(self):
        c = BranchPredictorConfig()
        assert c.btb_entries == 1024 and c.btb_assoc == 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(kind="neural"),
            dict(table_bits=2),
            dict(table_bits=30),
            dict(btb_entries=1000, btb_assoc=3),
            dict(mispredict_penalty=-1),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            BranchPredictorConfig(**kwargs)


class TestFuncUnitMix:
    def test_defaults_are_paper_values(self):
        m = FuncUnitMix()
        assert (m.int_alu, m.int_mult, m.fp_alu, m.fp_mult) == (8, 4, 8, 4)

    def test_zero_units_rejected(self):
        with pytest.raises(ConfigError):
            FuncUnitMix(int_alu=0)


class TestThreadUnitConfig:
    def test_defaults(self):
        tu = ThreadUnitConfig()
        assert tu.issue_width == 8
        assert tu.l1d.size == 8 * 1024
        assert tu.l1d.assoc == 1
        assert tu.l1i.size == 32 * 1024
        assert tu.mem_buffer_entries == 128

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(issue_width=0),
            dict(issue_width=16, rob_size=8),
            dict(lsq_size=0),
            dict(mem_buffer_entries=0),
            dict(mem_ports=0),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            ThreadUnitConfig(**kwargs)


class TestMemorySystemConfig:
    def test_defaults_match_paper(self):
        m = MemorySystemConfig()
        assert m.l2.size == 512 * 1024
        assert m.l2.assoc == 4
        assert m.l2.block_size == 128
        assert m.memory_latency == 200

    def test_memory_must_be_slower_than_l2(self):
        with pytest.raises(ConfigError):
            MemorySystemConfig(memory_latency=5)


class TestWrongExecutionConfig:
    def test_any(self):
        assert not WrongExecutionConfig().any
        assert WrongExecutionConfig(wrong_path=True).any
        assert WrongExecutionConfig(wrong_thread=True).any


class TestMachineConfig:
    def test_defaults(self):
        m = MachineConfig()
        assert m.n_thread_units == 8
        assert m.total_issue_width == 64
        assert m.fork_delay == 4
        assert m.comm_cycles_per_value == 2

    def test_with_thread_units(self):
        m = MachineConfig().with_thread_units(4)
        assert m.n_thread_units == 4

    def test_describe_mentions_key_facts(self):
        text = MachineConfig(name="wth-wp-wec").describe()
        assert "wth-wp-wec" in text and "8TU" in text

    def test_invalid_tu_count(self):
        with pytest.raises(ConfigError):
            MachineConfig(n_thread_units=0)

    def test_l1_block_must_not_exceed_l2_block(self):
        big_l1_blocks = ThreadUnitConfig(
            l1d=CacheConfig(size=8192, assoc=1, block_size=256)
        )
        with pytest.raises(ConfigError):
            MachineConfig(tu=big_l1_blocks)


class TestSimParams:
    def test_defaults(self):
        p = SimParams()
        assert p.seed == 2003
        assert 0 < p.scale <= 1
        assert p.warmup_invocations == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(scale=0.0),
            dict(scale=1.5),
            dict(mlp_per_16_rob=0),
            dict(mlp_cap=0.5),
            dict(wrong_fill_mshr_fraction=-0.1),
            dict(wrong_fill_mshr_fraction=1.5),
            dict(warmup_invocations=-1),
            dict(prefetch_late_cycles=-1),
            dict(prefetch_late_far_cycles=-1),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            SimParams(**kwargs)
