"""Tests for the observability subsystem (repro.obs).

Three properties matter more than any feature: tracing must never change
simulation results, sampled streams must be reproducible, and the
exported artifacts must be well-formed Chrome trace JSON.
"""

from __future__ import annotations

import json

import pytest

from repro import SimParams, named_config, run_simulation
from repro.cli import main as cli_main
from repro.common.errors import ConfigError
from repro.mem.cache import WRONG
from repro.obs.events import (
    CAT_BRANCH,
    CAT_MEM,
    CAT_THREAD,
    CAT_WEC,
    CATEGORIES,
    Event,
    ITER_RETIRE,
    KIND_CATEGORY,
    KIND_NAMES,
    L1_MISS,
    REGION_END,
    WEC_HIT,
    WP_ENTER,
    WRONG_LOAD,
    event_to_dict,
)
from repro.obs.export import REGIONS_TID, TRACE_PID, chrome_trace, write_jsonl
from repro.obs.tracer import IntervalMetrics, NullTracer, RingBufferTracer

FAST = SimParams(seed=7, scale=5e-5, warmup_invocations=0)
WEC_CFG = named_config("wth-wp-wec", n_tus=4)


def traced_run(tracer, params=FAST, config=WEC_CFG):
    return run_simulation("181.mcf", config, params, tracer=tracer)


# ---------------------------------------------------------------------------
# event taxonomy
# ---------------------------------------------------------------------------


class TestEvents:
    def test_every_kind_is_named_and_categorized(self):
        assert set(KIND_NAMES) == set(KIND_CATEGORY)
        assert set(KIND_CATEGORY.values()) <= set(CATEGORIES)
        assert len(set(KIND_NAMES.values())) == len(KIND_NAMES)

    def test_event_to_dict(self):
        ev = Event(100.0, WEC_HIT, 3, a=0x40, b=WRONG)
        d = event_to_dict(ev)
        assert d["kind"] == "wec_hit"
        assert d["cat"] == CAT_WEC
        assert d["tu"] == 3
        assert "dur" not in d and "tag" not in d
        d2 = event_to_dict(Event(1.0, REGION_END, 0, dur=50.0, tag="loop"))
        assert d2["dur"] == 50.0 and d2["tag"] == "loop"


# ---------------------------------------------------------------------------
# tracers
# ---------------------------------------------------------------------------


class TestRingBufferTracer:
    def test_records_and_orders_events(self):
        tr = RingBufferTracer(capacity=8)
        tr.now = 5.0
        tr.emit(L1_MISS, 1, 0x10)
        tr.emit(WEC_HIT, 2, 0x20, cycle=9.0)
        evs = tr.events()
        assert [e.kind for e in evs] == [L1_MISS, WEC_HIT]
        assert evs[0].cycle == 5.0 and evs[1].cycle == 9.0

    def test_ring_overwrites_oldest(self):
        tr = RingBufferTracer(capacity=4)
        for i in range(10):
            tr.emit(L1_MISS, 0, i, cycle=float(i))
        evs = tr.events()
        assert len(evs) == 4
        assert [e.a for e in evs] == [6, 7, 8, 9]
        assert tr.n_dropped == 6

    def test_category_filter(self):
        tr = RingBufferTracer(categories=[CAT_WEC])
        assert tr.wants(CAT_WEC)
        assert not tr.wants(CAT_BRANCH)
        tr.emit(L1_MISS, 0, 1)
        tr.emit(WEC_HIT, 0, 2)
        assert [e.kind for e in tr.events()] == [WEC_HIT]

    def test_metrics_bypass_filter_and_sampling(self):
        m = IntervalMetrics(window=100.0)
        tr = RingBufferTracer(categories=[CAT_BRANCH], sample=1000, metrics=m)
        # mem is filtered out of the ring, but the metrics carrier still
        # wants it and folds every event.
        assert tr.wants(CAT_MEM)
        for i in range(7):
            tr.emit(L1_MISS, 0, i, cycle=50.0)
        assert len(tr) == 0
        assert m._buckets[0][2] == 7

    def test_sampling_is_modular(self):
        tr = RingBufferTracer(sample=3)
        for i in range(9):
            tr.emit(L1_MISS, 0, i, cycle=float(i))
        assert [e.a for e in tr.events()] == [0, 3, 6]

    def test_validation(self):
        with pytest.raises(ConfigError):
            RingBufferTracer(capacity=0)
        with pytest.raises(ConfigError):
            RingBufferTracer(sample=0)
        with pytest.raises(ConfigError):
            RingBufferTracer(categories=["nonsense"])


class TestIntervalMetrics:
    def test_window_validation(self):
        with pytest.raises(ConfigError):
            IntervalMetrics(window=0)

    def test_series_math(self):
        m = IntervalMetrics(window=100.0)
        # Window 0: 50 instructions / 20 loads, 10 misses, 4 wec hits,
        # 5 wrong loads.  Window 2: empty gap, then one retire.
        m.record(ITER_RETIRE, 10.0, 50, 20)
        for _ in range(10):
            m.record(L1_MISS, 20.0, 0, 0)
        for _ in range(4):
            m.record(WEC_HIT, 30.0, 0, 0)
        for _ in range(5):
            m.record(WRONG_LOAD, 40.0, 0, 0)
        m.record(ITER_RETIRE, 250.0, 30, 0)
        s = m.series()
        assert s["window_start"] == [0.0, 200.0]
        assert s["ipc"] == [0.5, 0.3]
        assert s["l1_miss_rate"] == [0.5, 0.0]
        assert s["wec_hit_rate"] == [0.4, 0.0]
        assert s["wrong_load_fraction"] == [0.2, 0.0]

    def test_ignores_unrelated_kinds(self):
        m = IntervalMetrics(window=10.0)
        m.record(WP_ENTER, 5.0, 1, 2)
        assert m.n_windows == 0


# ---------------------------------------------------------------------------
# tracing never changes results; streams are reproducible
# ---------------------------------------------------------------------------


@pytest.mark.slow
class TestDeterminism:
    def test_traced_equals_untraced(self):
        base = traced_run(None)
        null = traced_run(NullTracer())
        ring = traced_run(RingBufferTracer(metrics=IntervalMetrics()))
        d_base, d_null, d_ring = (
            r.to_dict() for r in (base, null, ring)
        )
        for d in (d_base, d_null, d_ring):
            d.pop("interval_series")
        assert d_base == d_null == d_ring

    def test_sampled_stream_reproducible(self):
        streams = []
        for _ in range(2):
            tr = RingBufferTracer(sample=5)
            traced_run(tr)
            streams.append(tr.events())
        assert streams[0] == streams[1]
        assert len(streams[0]) > 0

    def test_interval_series_surface(self):
        r = traced_run(IntervalMetrics(window=2048.0))
        s = r.interval_series
        assert s is not None and len(s["window_start"]) > 0
        assert r.to_dict()["interval_series"] == s
        assert traced_run(None).interval_series is None


# ---------------------------------------------------------------------------
# export
# ---------------------------------------------------------------------------


class TestExport:
    EVENTS = [
        Event(0.0, 3, 0, a=0, b=40, dur=90.0),       # ITER_SPAN
        Event(10.0, 17, 1, a=0x40, b=WRONG),         # WEC_HIT instant
        Event(120.0, 2, 0, a=0, b=4, dur=120.0, tag="loop"),  # REGION_END
    ]

    def test_chrome_trace_structure(self):
        doc = chrome_trace(
            self.EVENTS,
            interval_series={"window_start": [0.0], "ipc": [0.5]},
            label="unit",
        )
        evs = doc["traceEvents"]
        spans = [e for e in evs if e["ph"] == "X"]
        assert {e["tid"] for e in spans} == {0, REGIONS_TID}
        region = next(e for e in spans if e["tid"] == REGIONS_TID)
        assert region["ts"] == 0.0 and region["dur"] == 120.0
        instants = [e for e in evs if e["ph"] == "i"]
        assert instants[0]["name"] == "wec_hit" and instants[0]["tid"] == 1
        counters = [e for e in evs if e["ph"] == "C"]
        assert counters[0]["args"] == {"IPC": 0.5}
        names = [e for e in evs if e["ph"] == "M"]
        assert any(e["args"].get("name") == "TU 1" for e in names)
        assert doc["otherData"]["label"] == "unit"
        json.dumps(doc)  # must be serializable

    def test_write_jsonl(self, tmp_path):
        path = write_jsonl(self.EVENTS, tmp_path / "events.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        assert json.loads(lines[1])["kind"] == "wec_hit"


# ---------------------------------------------------------------------------
# CLI end to end
# ---------------------------------------------------------------------------


@pytest.mark.slow
class TestTraceCli:
    def test_trace_subcommand(self, tmp_path):
        out = tmp_path / "trace.json"
        jsonl = tmp_path / "events.jsonl"
        rc = cli_main([
            "trace", "181.mcf", "wth-wp-wec",
            "--out", str(out), "--jsonl", str(jsonl),
            "--scale", "5e-5", "--seed", "7",
        ])
        assert rc == 0
        doc = json.loads(out.read_text())
        evs = doc["traceEvents"]
        assert all(e.get("pid", TRACE_PID) == TRACE_PID for e in evs)
        wec_tids = {e["tid"] for e in evs if e.get("name") == "wec_hit"}
        wp_tids = {
            e["tid"] for e in evs
            if e.get("name") in ("wp_enter", "wp_exit", "wrong_load")
        }
        assert len(wec_tids) >= 2, "WEC hits must appear on >= 2 TU tracks"
        assert len(wp_tids) >= 2, "wrong-path events on >= 2 TU tracks"
        assert jsonl.exists() and jsonl.read_text().count("\n") > 100

    def test_trace_category_filter(self, tmp_path):
        out = tmp_path / "wec_only.json"
        rc = cli_main([
            "trace", "181.mcf", "wth-wp-wec",
            "--out", str(out), "--events", CAT_WEC,
            "--scale", "5e-5", "--window", "0",
        ])
        assert rc == 0
        doc = json.loads(out.read_text())
        cats = {e["cat"] for e in doc["traceEvents"] if e["ph"] in ("i", "X")}
        assert cats == {CAT_WEC}

    def test_trace_rejects_unknown_category(self, capsys):
        rc = cli_main([
            "trace", "181.mcf", "wth-wp-wec", "--events", "bogus",
        ])
        assert rc == 2
        assert "unknown trace categories" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# SimResult guards
# ---------------------------------------------------------------------------


class TestIpcGuard:
    def test_zero_cycles_yields_zero_ipc(self):
        r = traced_run(None)
        # Constructing with zero cycles is rejected, but downstream
        # mutation (e.g. deserialized partial records) must not divide
        # by zero — mirror of the mispredict_rate guard.
        r.total_cycles = 0.0
        assert r.ipc == 0.0
        assert repr(r)  # __repr__ uses ipc; must not raise
