"""Regression tests pinning every §4.1/§5.2 machine constant.

If someone "tunes" a paper-specified value, these tests catch it.  The
calibrated modelling knobs (DESIGN.md §6) are deliberately *not* pinned
here — they are documented as free parameters.
"""

from __future__ import annotations

import pytest

from repro.common.config import MachineConfig, SimParams
from repro.core.timing import STORE_STALL_WEIGHT
from repro.sta.configs import named_config
from repro.workloads.benchmarks import BENCHMARK_INFO, N_INVOCATIONS


class TestSection41Constants:
    """§4.1 — thread unit parameters."""

    def setup_method(self):
        self.cfg = MachineConfig()

    def test_btb_1024_entries_4way(self):
        assert self.cfg.tu.branch.btb_entries == 1024
        assert self.cfg.tu.branch.btb_assoc == 4

    def test_speculative_memory_buffer_128_entries(self):
        assert self.cfg.tu.mem_buffer_entries == 128

    def test_l1i_32k_2way(self):
        assert self.cfg.tu.l1i.size == 32 * 1024
        assert self.cfg.tu.l1i.assoc == 2

    def test_l2_512k_4way_128b(self):
        assert self.cfg.mem.l2.size == 512 * 1024
        assert self.cfg.mem.l2.assoc == 4
        assert self.cfg.mem.l2.block_size == 128

    def test_memory_round_trip_200(self):
        assert self.cfg.mem.memory_latency == 200

    def test_fork_delay_4_plus_2_per_value(self):
        assert self.cfg.fork_delay == 4
        assert self.cfg.comm_cycles_per_value == 2


class TestSection52Defaults:
    """§5.2 — the default machine for the WEC experiments."""

    def setup_method(self):
        self.cfg = named_config("wth-wp-wec")

    def test_eight_tus_eight_issue(self):
        assert self.cfg.n_thread_units == 8
        assert self.cfg.tu.issue_width == 8

    def test_rob_and_lsq_64(self):
        assert self.cfg.tu.rob_size == 64
        assert self.cfg.tu.lsq_size == 64

    def test_fu_mix_8_4_8_4(self):
        fu = self.cfg.tu.func_units
        assert (fu.int_alu, fu.int_mult, fu.fp_alu, fu.fp_mult) == (8, 4, 8, 4)

    def test_l1d_8k_direct_mapped_64b(self):
        assert self.cfg.tu.l1d.size == 8 * 1024
        assert self.cfg.tu.l1d.assoc == 1
        assert self.cfg.tu.l1d.block_size == 64

    def test_wec_8_entries(self):
        assert self.cfg.tu.sidecar.entries == 8


class TestTable2Constants:
    """Table 2 — dynamic instruction counts carried verbatim."""

    @pytest.mark.parametrize(
        "name,whole,targeted",
        [
            ("175.vpr", 1126.5, 97.2),
            ("164.gzip", 1550.7, 243.6),
            ("181.mcf", 601.6, 217.3),
            ("197.parser", 514.0, 88.6),
            ("183.equake", 716.3, 152.6),
            ("177.mesa", 1832.1, 319.0),
        ],
    )
    def test_instruction_counts(self, name, whole, targeted):
        info = BENCHMARK_INFO[name]
        assert info.whole_minstr == whole
        assert info.targeted_minstr == targeted

    @pytest.mark.parametrize(
        "name,fraction",
        [
            ("175.vpr", 0.086),
            ("164.gzip", 0.157),
            ("181.mcf", 0.361),
            ("197.parser", 0.172),
            ("183.equake", 0.213),
            ("177.mesa", 0.174),
        ],
    )
    def test_parallel_fractions(self, name, fraction):
        assert BENCHMARK_INFO[name].fraction_parallelized == pytest.approx(
            fraction, abs=0.002
        )


class TestModelConstantsDocumented:
    """The free modelling knobs exist, with their calibrated defaults."""

    def test_simparams_knobs(self):
        p = SimParams()
        assert p.wrong_fill_mshr_fraction == pytest.approx(0.75)
        assert p.prefetch_late_cycles == pytest.approx(6.0)
        assert p.prefetch_late_far_cycles == pytest.approx(150.0)
        assert p.warmup_invocations == 1
        assert p.mlp_cap == pytest.approx(4.0)

    def test_store_stall_weight(self):
        assert STORE_STALL_WEIGHT == pytest.approx(0.2)

    def test_four_invocations(self):
        assert N_INVOCATIONS == 4
