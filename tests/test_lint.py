"""The static half of ``repro lint``: rules, allow tags, baseline, CLI.

Every rule is exercised as a pair: a violating snippet that must fire
and a compliant twin that must stay silent.  The engine tests cover the
suppression machinery (justified allow tags, the baseline ratchet with
mandatory reasons, stale-entry reporting) and the CLI tests pin the
0/1/2 exit convention.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.common.errors import LintError
from repro.lint.engine import (
    lint_paths,
    lint_source,
    load_baseline,
    module_name,
    parse_allow_tags,
    write_baseline,
)
from repro.lint.rules import RULES, RULES_BY_ID

REPO_ROOT = Path(__file__).resolve().parents[1]


def rules_fired(source: str, module: str) -> set:
    findings, _ = lint_source(source, module=module)
    return {f.rule for f in findings}


# ---------------------------------------------------------------------------
# rule catalog: violating snippet fires, compliant twin is silent
# ---------------------------------------------------------------------------


class TestRuleCatalog:
    def test_every_rule_has_metadata(self):
        assert len(RULES) == 15
        for rule in RULES:
            assert rule.title and rule.rationale
            assert RULES_BY_ID[rule.id] is rule

    # -- DET001 ------------------------------------------------------------

    def test_det001_fires_on_wallclock_call_in_sim_path(self):
        src = "import time\ndef f():\n    return time.perf_counter()\n"
        assert "DET001" in rules_fired(src, "repro.core.thread_unit2")

    def test_det001_fires_on_from_import_reference(self):
        src = "from time import perf_counter\nclock = perf_counter\n"
        assert "DET001" in rules_fired(src, "repro.sim.driver")

    def test_det001_fires_on_datetime_now(self):
        src = "from datetime import datetime\ndef f():\n    return datetime.now()\n"
        assert "DET001" in rules_fired(src, "repro.mem.anything")

    def test_det001_silent_outside_sim_scope(self):
        src = "import time\ndef f():\n    return time.perf_counter()\n"
        assert "DET001" not in rules_fired(src, "repro.obs.ledger")

    def test_det001_silent_on_unrelated_attribute(self):
        # A sim object with a method named `time` must not match.
        src = "def f(sched):\n    return sched.time()\n"
        assert rules_fired(src, "repro.core.x") == set()

    # -- DET002 ------------------------------------------------------------

    def test_det002_fires_on_global_random(self):
        src = "import random\ndef f():\n    return random.randint(0, 3)\n"
        assert "DET002" in rules_fired(src, "repro.workloads.x")

    def test_det002_fires_on_numpy_global_state(self):
        src = "import numpy as np\ndef f():\n    return np.random.rand(4)\n"
        assert "DET002" in rules_fired(src, "repro.workloads.x")

    def test_det002_silent_on_seeded_instances(self):
        src = (
            "import random\nimport numpy as np\n"
            "def f(seed):\n"
            "    return random.Random(seed), np.random.default_rng(seed)\n"
        )
        assert "DET002" not in rules_fired(src, "repro.workloads.x")

    def test_det002_silent_on_local_method_named_choice(self):
        src = "def f(rng, xs):\n    return rng.choice(xs)\n"
        assert rules_fired(src, "repro.workloads.x") == set()

    # -- DET003 ------------------------------------------------------------

    def test_det003_fires_on_set_iteration(self):
        src = "def f(xs):\n    for x in set(xs):\n        print(x)\n"
        assert "DET003" in rules_fired(src, "repro.obs.export2")

    def test_det003_fires_on_keys_iteration_and_comprehension(self):
        src = "def f(d):\n    return [k for k in d.keys()]\n"
        assert "DET003" in rules_fired(src, "repro.sim.tables2")

    def test_det003_silent_when_sorted(self):
        src = "def f(xs, d):\n    for x in sorted(set(xs) | set(d)):\n        pass\n"
        assert "DET003" not in rules_fired(src, "repro.obs.export2")

    def test_det003_silent_on_membership_test(self):
        # set() used for O(1) membership (the compare.py satellite fix
        # pattern) is order-free and must not fire.
        src = "def f(xs, wanted):\n    names = frozenset(wanted)\n    return [x for x in xs if x in names]\n"
        assert "DET003" not in rules_fired(src, "repro.obs.compare2")

    # -- DET004 ------------------------------------------------------------

    def test_det004_fires_on_environ_in_pure_sim(self):
        src = "import os\ndef f():\n    return os.environ.get('REPRO_X')\n"
        assert "DET004" in rules_fired(src, "repro.sim.driver")

    def test_det004_fires_on_getenv_from_import(self):
        src = "from os import getenv\ndef f():\n    return getenv('X')\n"
        assert "DET004" in rules_fired(src, "repro.workloads.x")

    def test_det004_silent_at_executor_boundary(self):
        # The executor layer owns the env knobs by design.
        src = "import os\ndef f():\n    return os.environ.get('REPRO_JOBS')\n"
        assert "DET004" not in rules_fired(src, "repro.sim.executor2")

    # -- DET005 ------------------------------------------------------------

    def test_det005_fires_on_builtin_hash(self):
        src = "def f(s):\n    return hash(s) % 8\n"
        assert "DET005" in rules_fired(src, "repro.common.x")

    def test_det005_silent_on_stable_hash(self):
        src = (
            "from repro.common.rng import stable_hash32\n"
            "def f(s):\n    return stable_hash32(s) % 8\n"
        )
        assert "DET005" not in rules_fired(src, "repro.common.x")

    # -- KEY001 ------------------------------------------------------------

    def test_key001_fires_on_unfrozen_dataclass(self):
        src = "from dataclasses import dataclass\n@dataclass\nclass C:\n    x: int = 0\n"
        assert "KEY001" in rules_fired(src, "repro.common.config")

    def test_key001_fires_on_mutable_default(self):
        src = (
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\nclass C:\n    xs: list = []\n"
        )
        assert "KEY001" in rules_fired(src, "repro.common.config")

    def test_key001_fires_on_tracer_field(self):
        src = (
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\nclass C:\n    tracer: object = None\n"
        )
        assert "KEY001" in rules_fired(src, "repro.common.config")

    def test_key001_fires_on_mutation_outside_post_init(self):
        src = (
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\nclass C:\n    x: int = 0\n"
            "    def bump(self):\n        object.__setattr__(self, 'x', 2)\n"
        )
        assert "KEY001" in rules_fired(src, "repro.common.config")

    def test_key001_silent_on_compliant_config(self):
        src = (
            "from dataclasses import dataclass, field\n"
            "@dataclass(frozen=True)\nclass C:\n"
            "    x: int = 0\n    xs: tuple = ()\n"
            "    def __post_init__(self):\n"
            "        object.__setattr__(self, 'x', max(self.x, 1))\n"
        )
        assert rules_fired(src, "repro.common.config") == set()

    def test_key001_scoped_to_config_module(self):
        src = "from dataclasses import dataclass\n@dataclass\nclass C:\n    x: int = 0\n"
        assert "KEY001" not in rules_fired(src, "repro.sim.results2")

    # -- OBS001 ------------------------------------------------------------

    def test_obs001_fires_on_literal_kind(self):
        for call in ("tr.emit(3, 0, 1)", "tr.emit('l1_miss', 0)", "tr.emit(kind=7)"):
            src = f"def f(tr):\n    {call}\n"
            assert "OBS001" in rules_fired(src, "repro.mem.x"), call

    def test_obs001_silent_on_eventkind_constant(self):
        src = (
            "from repro.obs.events import L1_MISS\n"
            "def f(tr):\n    tr.emit(L1_MISS, 0, 1)\n"
        )
        assert "OBS001" not in rules_fired(src, "repro.mem.x")

    # -- OBS003 ------------------------------------------------------------

    def test_obs003_fires_on_literal_metric_name(self):
        for call in (
            "reg.inc('repro_cells_total', source='run')",
            "reg.set_gauge('repro_queue_depth', 3)",
            "reg.observe('repro_cell_latency_seconds', 0.5)",
            "reg.inc(name='repro_cells_total')",
        ):
            src = f"def f(reg):\n    {call}\n"
            assert "OBS003" in rules_fired(src, "repro.serve.x"), call

    def test_obs003_silent_on_name_constant(self):
        src = (
            "from repro.obs.telemetry import M_CELLS_TOTAL\n"
            "def f(reg):\n    reg.inc(M_CELLS_TOTAL, source='run')\n"
        )
        assert "OBS003" not in rules_fired(src, "repro.serve.x")

    def test_obs003_silent_on_unrelated_inc(self):
        # A counter object with .inc() taking no name must not match.
        src = "def f(counter):\n    counter.inc()\n"
        assert "OBS003" not in rules_fired(src, "repro.serve.x")

    # -- EXC001 ------------------------------------------------------------

    def test_exc001_fires_on_blanket_handlers(self):
        for clause in ("except:", "except Exception:", "except (ValueError, Exception):"):
            src = f"def f():\n    try:\n        pass\n    {clause}\n        pass\n"
            assert "EXC001" in rules_fired(src, "repro.sim.x"), clause

    def test_exc001_silent_on_typed_handler(self):
        src = "def f():\n    try:\n        pass\n    except (OSError, ValueError):\n        pass\n"
        assert "EXC001" not in rules_fired(src, "repro.sim.x")


# ---------------------------------------------------------------------------
# suppression: allow tags
# ---------------------------------------------------------------------------


class TestAllowTags:
    def test_tag_on_same_line_suppresses(self):
        src = (
            "import time\n"
            "def f():\n"
            "    return time.perf_counter()  # lint: allow(DET001 host timing)\n"
        )
        findings, suppressed = lint_source(src, module="repro.core.x")
        assert findings == [] and suppressed == 1

    def test_tag_on_line_above_suppresses(self):
        src = (
            "def f():\n"
            "    try:\n"
            "        pass\n"
            "    # lint: allow(EXC001 isolation boundary)\n"
            "    except Exception:\n"
            "        pass\n"
        )
        findings, suppressed = lint_source(src, module="repro.sim.x")
        assert findings == [] and suppressed == 1

    def test_tag_without_reason_does_not_suppress(self):
        src = (
            "import time\n"
            "def f():\n"
            "    return time.perf_counter()  # lint: allow(DET001)\n"
        )
        findings, suppressed = lint_source(src, module="repro.core.x")
        assert [f.rule for f in findings] == ["DET001"] and suppressed == 0

    def test_tag_for_other_rule_does_not_suppress(self):
        src = (
            "import time\n"
            "def f():\n"
            "    return time.perf_counter()  # lint: allow(EXC001 wrong rule)\n"
        )
        findings, _ = lint_source(src, module="repro.core.x")
        assert [f.rule for f in findings] == ["DET001"]

    def test_tag_inside_string_literal_is_not_a_tag(self):
        src = 'TAG = "# lint: allow(DET001 not a comment)"\n'
        assert parse_allow_tags(src) == {}

    def test_multiple_tags_in_one_comment(self):
        tags = parse_allow_tags(
            "x = 1  # lint: allow(DET001 one) allow(EXC001 two)\n"
        )
        assert tags == {1: {"DET001": "one", "EXC001": "two"}}


# ---------------------------------------------------------------------------
# engine: module names, paths, baseline
# ---------------------------------------------------------------------------


class TestEngine:
    def test_module_name_resolves_from_repro_component(self):
        assert module_name(Path("src/repro/mem/cache.py")) == "repro.mem.cache"
        assert module_name(Path("src/repro/lint/__init__.py")) == "repro.lint"
        assert module_name(Path("/tmp/foo/bar.py")) == "bar"

    def test_syntax_error_is_usage_error(self):
        with pytest.raises(LintError, match="does not parse"):
            lint_source("def f(:\n", path="broken.py")

    def test_unknown_rule_is_usage_error(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        with pytest.raises(LintError, match="unknown rule"):
            lint_paths([tmp_path], rules=["NOPE99"])

    def test_missing_path_is_usage_error(self):
        with pytest.raises(LintError, match="no such file"):
            lint_paths([Path("does/not/exist")])

    def test_rule_restriction(self, tmp_path):
        (tmp_path / "a.py").write_text(
            "import random\n"
            "def f():\n"
            "    try:\n"
            "        return random.random()\n"
            "    except Exception:\n"
            "        return None\n"
        )
        report = lint_paths([tmp_path], rules=["EXC001"])
        assert {f.rule for f in report.findings} == {"EXC001"}

    def test_baseline_suppresses_matching_finding(self, tmp_path):
        (tmp_path / "a.py").write_text("import random\nx = random.random()\n")
        base = tmp_path / "base.json"
        base.write_text(json.dumps({
            "version": 1,
            "entries": [{"rule": "DET002", "path": "a.py", "line": 2,
                         "reason": "pre-existing, tracked"}],
        }))
        report = lint_paths([tmp_path], baseline=base)
        assert report.findings == []
        assert report.n_baselined == 1
        assert report.stale_baseline == []
        assert report.exit_code == 0

    def test_baseline_reports_stale_entries(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        base = tmp_path / "base.json"
        base.write_text(json.dumps({
            "version": 1,
            "entries": [{"rule": "DET002", "path": "a.py", "line": 99,
                         "reason": "was fixed since"}],
        }))
        report = lint_paths([tmp_path], baseline=base)
        assert len(report.stale_baseline) == 1
        assert "stale" in report.render_text()

    def test_baseline_entry_without_reason_is_rejected(self, tmp_path):
        base = tmp_path / "base.json"
        base.write_text(json.dumps({
            "version": 1,
            "entries": [{"rule": "DET002", "path": "a.py", "line": 2,
                         "reason": "  "}],
        }))
        with pytest.raises(LintError, match="no reason"):
            load_baseline(base)

    def test_baseline_bad_shape_is_rejected(self, tmp_path):
        base = tmp_path / "base.json"
        base.write_text(json.dumps({"version": 2, "entries": []}))
        with pytest.raises(LintError, match="version 1"):
            load_baseline(base)

    def test_written_baseline_needs_justification_before_use(self, tmp_path):
        (tmp_path / "a.py").write_text("import random\nx = random.random()\n")
        report = lint_paths([tmp_path])
        base = tmp_path / "base.json"
        write_baseline(report.findings, base, tmp_path)
        # Freshly generated entries carry TODO reasons on purpose: the
        # loader rejects them until a human justifies each one.
        with pytest.raises(LintError, match="TODO|no reason"):
            load_baseline(base)


# ---------------------------------------------------------------------------
# CLI: the 0/1/2 convention
# ---------------------------------------------------------------------------


class TestLintCli:
    def test_clean_file_exits_0(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("def f(x):\n    return x + 1\n")
        assert main(["lint", str(tmp_path)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_seeded_violation_exits_1_with_location(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n\ndef f():\n    return random.random()\n")
        assert main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert f"{bad}:4:" in out and "DET002" in out

    def test_unknown_rule_exits_2(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main(["lint", str(tmp_path), "--rule", "NOPE99"]) == 2
        assert "lint:" in capsys.readouterr().err

    def test_missing_path_exits_2(self, capsys):
        assert main(["lint", "no/such/dir"]) == 2
        assert "lint:" in capsys.readouterr().err

    def test_unjustified_baseline_exits_2(self, tmp_path, capsys):
        (tmp_path / "a.py").write_text("x = 1\n")
        base = tmp_path / "base.json"
        base.write_text(json.dumps({
            "version": 1,
            "entries": [{"rule": "EXC001", "path": "a.py", "line": 1,
                         "reason": ""}],
        }))
        assert main(["lint", str(tmp_path), "--baseline", str(base)]) == 2
        assert "no reason" in capsys.readouterr().err

    def test_json_format_is_machine_readable(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import random\nx = random.random()\n")
        assert main(["lint", str(tmp_path), "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == 1
        assert doc["findings"][0]["rule"] == "DET002"

    def test_rule_flag_accepts_commas_and_repeats(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(
            "import random\nx = random.random()\nh = hash('x')\n"
        )
        assert main(["lint", str(tmp_path), "--rule", "DET005,OBS001",
                     "--rule", "EXC001"]) == 1
        out = capsys.readouterr().out
        assert "DET005" in out and "DET002" not in out

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in RULES:
            assert rule.id in out

    def test_write_baseline_roundtrip(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import random\nx = random.random()\n")
        base = tmp_path / "base.json"
        assert main(["lint", str(tmp_path), "--write-baseline", str(base)]) == 0
        doc = json.loads(base.read_text())
        assert doc["entries"][0]["rule"] == "DET002"
        assert "TODO" in doc["entries"][0]["reason"]

    def test_merged_tree_is_clean(self, capsys):
        """The acceptance gate: `repro lint src/` exits 0 on this tree."""
        rc = main(["lint", str(REPO_ROOT / "src"),
                   "--baseline", str(REPO_ROOT / "lint-baseline.json")])
        assert rc == 0, capsys.readouterr().out
