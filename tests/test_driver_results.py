"""Tests for the simulation driver, results and sweeps."""

from __future__ import annotations

import pytest

from repro.common.config import SimParams
from repro.common.errors import AnalysisError
from repro.sim.driver import run_program, run_simulation
from repro.sim.results import SimResult, require_same_workload
from repro.sim.sweep import (
    baseline_of,
    benchmarks_of,
    labels_of,
    run_config_axis,
    run_grid,
)
from repro.sta.configs import named_config
from repro.workloads.benchmarks import build_benchmark

SCALE = 3e-5
PARAMS = SimParams(seed=9, scale=SCALE, warmup_invocations=1)


@pytest.fixture(scope="module")
def mcf_orig():
    return run_simulation("181.mcf", named_config("orig"), PARAMS)


@pytest.fixture(scope="module")
def mcf_wec():
    return run_simulation("181.mcf", named_config("wth-wp-wec"), PARAMS)


class TestDriver:
    def test_accepts_name_or_program(self):
        prog = build_benchmark("175.vpr", SCALE)
        by_name = run_simulation("175.vpr", named_config("orig"), PARAMS)
        by_prog = run_program(prog, named_config("orig"), PARAMS)
        assert by_name.total_cycles == pytest.approx(by_prog.total_cycles)

    def test_deterministic(self):
        a = run_simulation("164.gzip", named_config("orig"), PARAMS)
        b = run_simulation("164.gzip", named_config("orig"), PARAMS)
        assert a.total_cycles == b.total_cycles
        assert a.counters == b.counters

    def test_result_fields_consistent(self, mcf_orig):
        r = mcf_orig
        assert r.benchmark == "181.mcf"
        assert r.config == "orig"
        assert r.n_tus == 8
        assert r.total_cycles == pytest.approx(
            r.parallel_cycles + r.sequential_cycles
        )
        assert r.instructions > 0
        assert 0 < r.ipc < 64
        assert r.l1_traffic > 0
        assert r.effective_misses <= r.l1_misses

    def test_orig_has_no_wrong_loads(self, mcf_orig):
        assert mcf_orig.wrong_loads == 0
        assert mcf_orig.wrong_thread_loads == 0

    def test_wec_has_wrong_loads(self, mcf_wec):
        assert mcf_wec.wrong_loads > 0
        assert mcf_wec.wrong_thread_loads > 0
        assert mcf_wec.sidecar_hits > 0

    def test_warmup_reduces_measured_work(self):
        no_wu = run_simulation(
            "175.vpr", named_config("orig"),
            SimParams(seed=9, scale=SCALE, warmup_invocations=0),
        )
        wu = run_simulation(
            "175.vpr", named_config("orig"),
            SimParams(seed=9, scale=SCALE, warmup_invocations=1),
        )
        # One of four invocations excluded: ~3/4 the instructions.
        assert wu.instructions < no_wu.instructions
        assert wu.instructions == pytest.approx(no_wu.instructions * 0.75, rel=0.1)

    def test_warmup_capped_below_invocations(self):
        r = run_simulation(
            "175.vpr", named_config("orig"),
            SimParams(seed=9, scale=SCALE, warmup_invocations=100),
        )
        assert r.total_cycles > 0  # at least one timed invocation remains

    def test_record_regions(self):
        r = run_simulation(
            "175.vpr", named_config("orig"),
            SimParams(seed=9, scale=SCALE, record_regions=True),
        )
        assert r.region_cycles
        kinds = {rec["kind"] for rec in r.region_cycles}
        assert kinds == {"parallel", "sequential"}


class TestSimResultMath:
    def test_speedups(self, mcf_orig, mcf_wec):
        s = mcf_wec.speedup_vs(mcf_orig)
        pct = mcf_wec.relative_speedup_pct_vs(mcf_orig)
        assert pct == pytest.approx((s - 1) * 100)
        assert mcf_wec.normalized_time_vs(mcf_orig) == pytest.approx(1 / s)

    def test_traffic_and_missred(self, mcf_orig, mcf_wec):
        assert mcf_wec.traffic_increase_pct_vs(mcf_orig) > 0
        assert mcf_wec.miss_reduction_pct_vs(mcf_orig) > 0

    def test_cross_benchmark_comparison_rejected(self, mcf_orig):
        other = run_simulation("175.vpr", named_config("orig"), PARAMS)
        with pytest.raises(AnalysisError):
            other.speedup_vs(mcf_orig)

    def test_cross_seed_comparison_rejected(self, mcf_orig):
        other = run_simulation(
            "181.mcf", named_config("orig"), SimParams(seed=10, scale=SCALE)
        )
        with pytest.raises(AnalysisError):
            require_same_workload(other, mcf_orig)

    def test_serialization_roundtrip(self, mcf_orig):
        data = mcf_orig.to_dict()
        back = SimResult.from_dict(data)
        assert back.total_cycles == mcf_orig.total_cycles
        assert back.counters == mcf_orig.counters
        assert "181.mcf" in mcf_orig.to_json()

    def test_nonpositive_cycles_rejected(self):
        with pytest.raises(AnalysisError):
            SimResult("b", "c", 1, 0.0, 0.0, 0.0, 10)


class TestSweep:
    def test_run_grid(self):
        grid = run_grid(
            {"orig": named_config("orig"), "vc": named_config("vc")},
            benchmarks=["175.vpr", "164.gzip"],
            params=PARAMS,
        )
        assert len(grid) == 4
        assert benchmarks_of(grid) == ["175.vpr", "164.gzip"]
        assert labels_of(grid) == ["orig", "vc"]

    def test_baseline_of(self):
        grid = run_grid(
            {"orig": named_config("orig"), "vc": named_config("vc")},
            benchmarks=["175.vpr"],
            params=PARAMS,
        )
        base = baseline_of(grid, "orig")
        assert set(base) == {"175.vpr"}
        with pytest.raises(AnalysisError):
            baseline_of(grid, "ghost")

    def test_empty_axis_rejected(self):
        with pytest.raises(AnalysisError):
            run_grid({}, benchmarks=["175.vpr"], params=PARAMS)

    def test_run_config_axis(self):
        grid = run_config_axis(
            lambda label: named_config(label),
            axis=["orig", "nlp"],
            benchmarks=["175.vpr"],
            params=PARAMS,
        )
        assert ("175.vpr", "nlp") in grid

    def test_progress_callback(self):
        calls = []
        run_grid(
            {"orig": named_config("orig")},
            benchmarks=["175.vpr"],
            params=PARAMS,
            progress=lambda b, l: calls.append((b, l)),
        )
        assert calls == [("175.vpr", "orig")]
