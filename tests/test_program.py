"""Tests for the program/region representation and benchmark metadata."""

from __future__ import annotations

import pytest

from repro.common.errors import WorkloadError
from repro.isa.cfg import BlockSpec, BranchSpec, IterationCFG, MemSlot
from repro.workloads.patterns import RandomPattern
from repro.workloads.program import (
    BenchmarkInfo,
    ParallelRegionSpec,
    Program,
    SequentialRegionSpec,
    WrongExecProfile,
)


def simple_cfg():
    return IterationCFG(
        entry="a",
        blocks=[BlockSpec("a", 10, mem_slots=(MemSlot("p"),))],
    )


def patterns():
    return {"p": RandomPattern("p", 0, 4096, stagger=False),
            "poll": RandomPattern("poll", 8192, 4096, stagger=False)}


def par_region(**kw):
    defaults = dict(
        name="r",
        cfg=simple_cfg(),
        patterns=patterns(),
        iters_per_invocation=10,
    )
    defaults.update(kw)
    return ParallelRegionSpec(**defaults)


def seq_region(**kw):
    defaults = dict(
        name="s",
        cfg=simple_cfg(),
        patterns=patterns(),
        chunks_per_invocation=5,
    )
    defaults.update(kw)
    return SequentialRegionSpec(**defaults)


class TestWrongExecProfile:
    def test_defaults_valid(self):
        WrongExecProfile()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(wp_mean_loads=-1),
            dict(p_convergent=1.5),
            dict(wp_lookahead=0),
            dict(wth_fraction=-0.1),
            dict(wth_max_iters=-1),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(WorkloadError):
            WrongExecProfile(**kwargs)


class TestParallelRegionSpec:
    def test_valid(self):
        r = par_region(pollution_pattern="poll")
        assert r.iters_per_invocation == 10

    def test_unknown_pattern_in_cfg(self):
        cfg = IterationCFG(
            entry="a", blocks=[BlockSpec("a", 5, mem_slots=(MemSlot("ghost"),))]
        )
        with pytest.raises(WorkloadError):
            par_region(cfg=cfg)

    def test_unknown_pollution_pattern(self):
        with pytest.raises(WorkloadError):
            par_region(pollution_pattern="ghost")

    @pytest.mark.parametrize(
        "kwargs",
        [dict(iters_per_invocation=0), dict(dep_coupling=1.5), dict(ilp=0)],
    )
    def test_invalid_params(self, kwargs):
        with pytest.raises(WorkloadError):
            par_region(**kwargs)

    def test_global_iter_range(self):
        r = par_region(iters_per_invocation=10)
        assert r.global_iter_range(0) == (0, 10)
        assert r.global_iter_range(3) == (30, 40)


class TestSequentialRegionSpec:
    def test_valid(self):
        s = seq_region()
        assert s.global_chunk_range(2) == (10, 15)

    def test_unknown_pollution(self):
        with pytest.raises(WorkloadError):
            seq_region(pollution_pattern="ghost")

    def test_zero_chunks(self):
        with pytest.raises(WorkloadError):
            seq_region(chunks_per_invocation=0)


class TestProgram:
    def test_schedule_order(self):
        p = Program("t", [seq_region(), par_region()], n_invocations=2)
        order = [(inv, r.name) for inv, r in p.schedule()]
        assert order == [(0, "s"), (0, "r"), (1, "s"), (1, "r")]

    def test_region_kind_accessors(self):
        p = Program("t", [seq_region(), par_region()], 1)
        assert [r.name for r in p.parallel_regions] == ["r"]
        assert [r.name for r in p.sequential_regions] == ["s"]

    def test_duplicate_region_names(self):
        with pytest.raises(WorkloadError):
            Program("t", [par_region(), par_region()], 1)

    def test_empty_body(self):
        with pytest.raises(WorkloadError):
            Program("t", [], 1)

    def test_zero_invocations(self):
        with pytest.raises(WorkloadError):
            Program("t", [par_region()], 0)

    def test_repr_shows_structure(self):
        p = Program("t", [seq_region(), par_region()], 3)
        assert "SP" in repr(p) and "3" in repr(p)


class TestBenchmarkInfo:
    def test_fraction(self):
        info = BenchmarkInfo("x", "INT", "test", 100.0, 25.0)
        assert info.fraction_parallelized == pytest.approx(0.25)

    def test_targeted_cannot_exceed_whole(self):
        with pytest.raises(WorkloadError):
            BenchmarkInfo("x", "INT", "test", 100.0, 150.0)
