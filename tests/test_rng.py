"""Tests for deterministic RNG stream management."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.rng import StreamFactory, stable_hash32


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash32("mcf/loads") == stable_hash32("mcf/loads")

    def test_distinct_names_distinct_hashes(self):
        names = [f"stream{i}" for i in range(100)]
        assert len({stable_hash32(n) for n in names}) == 100

    def test_32bit_range(self):
        for name in ("", "a", "x" * 1000):
            h = stable_hash32(name)
            assert 0 <= h <= 0xFFFFFFFF


class TestStreamFactory:
    def test_same_seed_same_draws(self):
        a = StreamFactory(42).stream("x").integers(0, 1 << 30, 16)
        b = StreamFactory(42).stream("x").integers(0, 1 << 30, 16)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = StreamFactory(1).stream("x").integers(0, 1 << 30, 16)
        b = StreamFactory(2).stream("x").integers(0, 1 << 30, 16)
        assert not np.array_equal(a, b)

    def test_different_names_independent(self):
        f = StreamFactory(42)
        a = f.stream("a").integers(0, 1 << 30, 16)
        b = f.stream("b").integers(0, 1 << 30, 16)
        assert not np.array_equal(a, b)

    def test_stream_is_cached(self):
        f = StreamFactory(42)
        assert f.stream("x") is f.stream("x")

    def test_stream_state_advances(self):
        f = StreamFactory(42)
        first = f.stream("x").integers(0, 1 << 30, 8)
        second = f.stream("x").integers(0, 1 << 30, 8)
        assert not np.array_equal(first, second)

    def test_fresh_resets_state(self):
        f = StreamFactory(42)
        a = f.fresh("x").integers(0, 1 << 30, 8)
        b = f.fresh("x").integers(0, 1 << 30, 8)
        assert np.array_equal(a, b)

    def test_fresh_matches_initial_stream_state(self):
        a = StreamFactory(42).stream("x").integers(0, 1 << 30, 8)
        b = StreamFactory(42).fresh("x").integers(0, 1 << 30, 8)
        assert np.array_equal(a, b)

    def test_draw_order_does_not_perturb_other_streams(self):
        # Consuming stream "a" heavily must not change stream "b".
        f1 = StreamFactory(9)
        f1.stream("a").integers(0, 10, 1000)
        b1 = f1.stream("b").integers(0, 1 << 30, 8)
        f2 = StreamFactory(9)
        b2 = f2.stream("b").integers(0, 1 << 30, 8)
        assert np.array_equal(b1, b2)

    def test_child_factories_independent(self):
        f = StreamFactory(42)
        c1 = f.child("alpha").stream("x").integers(0, 1 << 30, 8)
        c2 = f.child("beta").stream("x").integers(0, 1 << 30, 8)
        assert not np.array_equal(c1, c2)

    def test_child_deterministic(self):
        a = StreamFactory(42).child("w").stream("x").integers(0, 1 << 30, 8)
        b = StreamFactory(42).child("w").stream("x").integers(0, 1 << 30, 8)
        assert np.array_equal(a, b)

    def test_seed_property(self):
        assert StreamFactory(123).seed == 123

    @given(st.integers(min_value=0, max_value=2**31 - 1), st.text(min_size=1, max_size=30))
    def test_any_seed_name_works(self, seed, name):
        g = StreamFactory(seed).stream(name)
        vals = g.random(4)
        assert np.all((0 <= vals) & (vals < 1))
