"""Tests for the per-TU memory system: all four sidecar policies.

These tests pin down the Figure 5/6 semantics: what fills where, what
latency each path sees, when next-line prefetches fire, and what the
wrong-execution paths may and may not touch.
"""

from __future__ import annotations

import pytest

from repro.common.config import (
    CacheConfig,
    MemorySystemConfig,
    SidecarConfig,
    SidecarKind,
)
from repro.mem.cache import DIRTY, PREFETCHED, WRONG
from repro.mem.coherence import UpdateBus
from repro.mem.hierarchy import HIT_LATENCY, TUMemSystem
from repro.mem.l2 import SharedL2

L2_HIT = 12
MEM = 200
LATE = 6.0
LATE_FAR = 150.0


def addr(block: int) -> int:
    return block * 64


@pytest.fixture
def l2():
    return SharedL2(
        MemorySystemConfig(
            l2=CacheConfig(size=64 * 1024, assoc=4, block_size=128,
                           hit_latency=L2_HIT, name="l2")
        )
    )


def mk(kind: SidecarKind, l2, entries=4, l1_blocks=4):
    return TUMemSystem(
        0,
        CacheConfig(size=l1_blocks * 64, assoc=1, block_size=64, name="l1d"),
        CacheConfig(size=1024, assoc=2, block_size=64, name="l1i"),
        SidecarConfig(kind=kind, entries=entries),
        l2,
        prefetch_late_cycles=LATE,
        prefetch_late_far_cycles=LATE_FAR,
    )


# ---------------------------------------------------------------------------
# WEC policy (Figure 6)
# ---------------------------------------------------------------------------

class TestWECPolicy:
    def test_correct_miss_fills_l1_victim_to_wec(self, l2):
        m = mk(SidecarKind.WEC, l2)
        lat = m.load_correct(addr(0))
        assert lat == HIT_LATENCY + MEM  # cold: memory
        # Evict block 0 by loading its set conflict (4-block DM L1).
        m.load_correct(addr(4))
        assert m.sidecar.probe(0) is not None  # victim cached
        assert m.stats["victims_to_sidecar"] == 1

    def test_victim_recovery_is_cheap(self, l2):
        m = mk(SidecarKind.WEC, l2)
        m.load_correct(addr(0))
        m.load_correct(addr(4))   # evicts 0 into WEC
        lat = m.load_correct(addr(0))  # WEC hit: swap back
        assert lat == HIT_LATENCY
        assert m.stats["sidecar_hits"] == 1
        # Swap: block 4 went into the WEC.
        assert m.sidecar.probe(4) is not None

    def test_wrong_load_fills_wec_only(self, l2):
        m = mk(SidecarKind.WEC, l2)
        m.load_wrong(addr(7))
        assert 7 not in m.l1d            # L1 untouched: no pollution
        assert m.sidecar.probe(7) == WRONG
        assert m.stats["wrong_fills"] == 1

    def test_wrong_load_hit_in_l1_touches_nothing(self, l2):
        m = mk(SidecarKind.WEC, l2)
        m.load_correct(addr(3))
        m.load_wrong(addr(3))
        assert m.stats["wrong_l1_hits"] == 1
        assert m.stats["wrong_fills"] == 0

    def test_correct_hit_on_wrong_block_promotes_and_prefetches(self, l2):
        m = mk(SidecarKind.WEC, l2)
        m.load_wrong(addr(7))
        lat = m.load_correct(addr(7))
        assert lat == HIT_LATENCY          # WRONG blocks pay no lateness
        assert 7 in m.l1d                  # promoted
        assert m.sidecar.probe(7) is None
        assert m.sidecar.probe(8) & PREFETCHED  # next-line fired
        assert m.stats["useful_wrong_hits"] == 1
        assert m.stats["prefetches"] == 1

    def test_chain_sustains_on_stream(self, l2):
        m = mk(SidecarKind.WEC, l2, entries=8, l1_blocks=16)
        m.load_wrong(addr(100))  # seed
        misses_beyond = 0
        for blk in range(100, 110):
            for t in range(4):
                lat = m.load_correct(blk * 64 + t * 16)
                if lat > HIT_LATENCY + LATE_FAR:
                    misses_beyond += 1
        assert misses_beyond == 0  # the whole stream rides the chain
        assert m.stats["useful_prefetch_hits"] >= 8

    def test_chain_hit_pays_lateness(self, l2):
        m = mk(SidecarKind.WEC, l2, entries=8, l1_blocks=16)
        m.load_wrong(addr(50))
        m.load_correct(addr(50))          # promote, prefetch 51
        lat = m.load_correct(addr(51))    # chain hit: prefetched block
        assert lat in (HIT_LATENCY + LATE, HIT_LATENCY + LATE_FAR)

    def test_victim_hit_does_not_prefetch(self, l2):
        m = mk(SidecarKind.WEC, l2)
        m.load_correct(addr(0))
        m.load_correct(addr(4))       # 0 evicted to WEC as plain victim
        m.load_correct(addr(0))       # recover
        assert m.stats["prefetches"] == 0

    def test_store_miss_wec_hit_swaps_dirty(self, l2):
        m = mk(SidecarKind.WEC, l2)
        m.load_wrong(addr(9))
        lat = m.store_correct(addr(9))
        assert lat == HIT_LATENCY
        assert m.l1d.probe(9) == DIRTY

    def test_dirty_wec_eviction_writes_back(self, l2):
        m = mk(SidecarKind.WEC, l2, entries=1)
        m.store_correct(addr(0))
        m.load_correct(addr(4))   # dirty victim 0 -> WEC (cap 1)
        m.load_wrong(addr(20))    # wrong fill bumps dirty victim
        assert m.stats["writebacks"] == 1

    def test_wrong_load_wec_hit_refreshes(self, l2):
        m = mk(SidecarKind.WEC, l2, entries=2)
        m.load_wrong(addr(30))
        m.load_wrong(addr(31))
        m.load_wrong(addr(30))     # refresh 30
        m.load_wrong(addr(32))     # evicts 31, not 30
        assert m.sidecar.probe(30) is not None
        assert m.sidecar.probe(31) is None
        assert m.stats["wrong_sidecar_hits"] == 1


# ---------------------------------------------------------------------------
# Victim-cache policy
# ---------------------------------------------------------------------------

class TestVictimPolicy:
    def test_swap_on_vc_hit(self, l2):
        m = mk(SidecarKind.VICTIM, l2)
        m.load_correct(addr(0))
        m.load_correct(addr(4))       # evicts 0 -> VC
        lat = m.load_correct(addr(0))
        assert lat == HIT_LATENCY
        assert m.sidecar.probe(4) is not None  # swapped

    def test_wrong_load_pollutes_l1(self, l2):
        m = mk(SidecarKind.VICTIM, l2)
        m.load_correct(addr(0))
        m.load_wrong(addr(4))          # same set: evicts block 0!
        assert 4 in m.l1d
        assert m.l1d.probe(4) == WRONG
        assert 0 not in m.l1d          # pollution happened

    def test_dirty_victim_keeps_dirty_in_vc(self, l2):
        m = mk(SidecarKind.VICTIM, l2)
        m.store_correct(addr(0))
        m.load_correct(addr(4))
        assert m.sidecar.probe(0) & DIRTY


# ---------------------------------------------------------------------------
# Tagged next-line prefetching (nlp)
# ---------------------------------------------------------------------------

class TestNLPPolicy:
    def test_prefetch_on_miss(self, l2):
        m = mk(SidecarKind.PREFETCH, l2)
        m.load_correct(addr(0))
        assert m.sidecar.probe(1) is not None
        assert m.stats["prefetches"] == 1

    def test_pb_hit_promotes_and_rearms(self, l2):
        m = mk(SidecarKind.PREFETCH, l2)
        m.load_correct(addr(0))          # prefetch 1
        lat = m.load_correct(addr(1))    # PB hit
        assert lat > HIT_LATENCY         # lateness charged
        assert 1 in m.l1d
        assert m.sidecar.probe(2) is not None  # chained

    def test_pb_victims_not_cached(self, l2):
        m = mk(SidecarKind.PREFETCH, l2)
        m.load_correct(addr(0))
        m.load_correct(addr(4))       # evicts 0: dropped, not into PB
        assert m.sidecar.probe(0) is None

    def test_prefetch_skipped_if_resident(self, l2):
        m = mk(SidecarKind.PREFETCH, l2)
        m.load_correct(addr(1))       # brings 1, prefetches 2
        before = m.stats["prefetches"]
        m.load_correct(addr(0))       # next line (1) already in L1
        assert m.stats["prefetches"] == before

    def test_no_wrong_execution_path_pollutes_like_plain(self, l2):
        # nlp never wrong-executes in the paper, but the policy object
        # still provides the plain path for robustness.
        m = mk(SidecarKind.PREFETCH, l2)
        m.load_wrong(addr(9))
        assert 9 in m.l1d


# ---------------------------------------------------------------------------
# Plain policy (orig / wp / wth / wth-wp)
# ---------------------------------------------------------------------------

class TestPlainPolicy:
    def test_latencies(self, l2):
        m = mk(SidecarKind.NONE, l2)
        lat_cold = m.load_correct(addr(0))
        assert lat_cold == HIT_LATENCY + MEM
        lat_hit = m.load_correct(addr(0))
        assert lat_hit == HIT_LATENCY
        # A neighbour in the same 128B L2 block is an L2 hit.
        lat_l2 = m.load_correct(addr(1))
        assert lat_l2 == HIT_LATENCY + L2_HIT

    def test_wrong_fill_pollutes_and_flags(self, l2):
        m = mk(SidecarKind.NONE, l2)
        m.load_wrong(addr(3))
        assert m.l1d.probe(3) == WRONG

    def test_correct_hit_on_wrong_block_counts_useful(self, l2):
        m = mk(SidecarKind.NONE, l2)
        m.load_wrong(addr(3))
        m.load_correct(addr(3))
        assert m.stats["useful_wrong_hits"] == 1
        assert m.l1d.probe(3) == 0  # WRONG cleared

    def test_dirty_eviction_writes_back(self, l2):
        m = mk(SidecarKind.NONE, l2)
        m.store_correct(addr(0))
        m.load_correct(addr(4))
        assert m.stats["writebacks"] == 1

    def test_store_sets_dirty(self, l2):
        m = mk(SidecarKind.NONE, l2)
        m.store_correct(addr(0))
        assert m.l1d.probe(0) & DIRTY
        m.store_correct(addr(0))  # hit path
        assert m.stats["l1_hits"] == 1


# ---------------------------------------------------------------------------
# Instruction fetch and shared metrics
# ---------------------------------------------------------------------------

class TestIFetchAndMetrics:
    def test_ifetch_miss_then_hit(self, l2):
        m = mk(SidecarKind.NONE, l2)
        lat = m.ifetch(0x40000000)
        assert lat > HIT_LATENCY
        assert m.ifetch(0x40000000) == HIT_LATENCY
        assert m.stats["l1i_misses"] == 1

    def test_l1_traffic_counts_wrong_loads(self, l2):
        m = mk(SidecarKind.NONE, l2)
        m.load_correct(addr(0))
        m.store_correct(addr(1))
        m.load_wrong(addr(2))
        assert m.l1_traffic == 3

    def test_effective_misses(self, l2):
        m = mk(SidecarKind.WEC, l2)
        m.load_correct(addr(0))       # demand fill
        m.load_correct(addr(4))       # demand fill, victim 0 -> WEC
        m.load_correct(addr(0))       # WEC hit: NOT an effective miss
        assert m.effective_misses == 2
        assert m.stats["l1_misses"] == 3

    def test_miss_rate(self, l2):
        m = mk(SidecarKind.NONE, l2)
        m.load_correct(addr(0))
        m.load_correct(addr(0))
        assert m.l1_miss_rate() == pytest.approx(0.5)

    def test_reset_clears_state_and_stats(self, l2):
        m = mk(SidecarKind.WEC, l2)
        m.load_correct(addr(0))
        m.load_wrong(addr(9))
        m.reset()
        assert m.l1_traffic == 0
        assert m.l1d.occupancy() == 0
        assert len(m.sidecar) == 0


class TestUpdateBus:
    def test_updates_only_remote_copies(self, l2):
        a = mk(SidecarKind.NONE, l2)
        b = TUMemSystem(
            1,
            CacheConfig(size=256, assoc=1, block_size=64, name="l1d"),
            CacheConfig(size=1024, assoc=2, block_size=64, name="l1i"),
            SidecarConfig(kind=SidecarKind.NONE),
            l2,
        )
        bus = UpdateBus([a, b])
        b.load_correct(addr(5))
        updated = bus.sequential_store(0, addr(5))
        assert updated == 1
        assert b.stats["bus_updates"] == 1
        assert a.stats["bus_updates"] == 0

    def test_update_checks_sidecar_too(self, l2):
        a = mk(SidecarKind.NONE, l2)
        w = mk(SidecarKind.WEC, l2)
        w.tu_id = 1  # distinct id for the bus
        bus = UpdateBus([a, w])
        w.load_wrong(addr(6))  # resident only in w's WEC
        assert bus.sequential_store(0, addr(6)) == 1

    def test_no_copies_no_updates(self, l2):
        a = mk(SidecarKind.NONE, l2)
        bus = UpdateBus([a])
        assert bus.sequential_store(0, addr(1)) == 0
        assert bus.stats["store_broadcasts"] == 1
