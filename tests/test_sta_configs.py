"""Tests for the §4.3 named configurations and Table 3 design points."""

from __future__ import annotations

import pytest

from repro.common.config import SidecarKind
from repro.common.errors import ConfigError
from repro.sta.configs import CONFIG_NAMES, TABLE3_ROWS, named_config, table3_config


class TestNamedConfigs:
    def test_all_eight_exist(self):
        assert len(CONFIG_NAMES) == 8
        for name in CONFIG_NAMES:
            cfg = named_config(name)
            assert cfg.name == name

    def test_unknown_name(self):
        with pytest.raises(ConfigError):
            named_config("wec-2000")

    def test_defaults_match_section_5_2(self):
        cfg = named_config("orig")
        assert cfg.n_thread_units == 8
        assert cfg.tu.issue_width == 8
        assert cfg.tu.rob_size == 64
        assert cfg.tu.lsq_size == 64
        assert cfg.tu.l1d.size == 8 * 1024
        assert cfg.tu.l1d.assoc == 1
        assert cfg.tu.l1d.block_size == 64
        assert cfg.mem.l2.size == 512 * 1024
        fu = cfg.tu.func_units
        assert (fu.int_alu, fu.int_mult, fu.fp_alu, fu.fp_mult) == (8, 4, 8, 4)

    @pytest.mark.parametrize(
        "name,kind",
        [
            ("orig", SidecarKind.NONE),
            ("vc", SidecarKind.VICTIM),
            ("wp", SidecarKind.NONE),
            ("wth", SidecarKind.NONE),
            ("wth-wp", SidecarKind.NONE),
            ("wth-wp-vc", SidecarKind.VICTIM),
            ("wth-wp-wec", SidecarKind.WEC),
            ("nlp", SidecarKind.PREFETCH),
        ],
    )
    def test_sidecars(self, name, kind):
        assert named_config(name).tu.sidecar.kind is kind

    @pytest.mark.parametrize(
        "name,wp,wth",
        [
            ("orig", False, False),
            ("vc", False, False),
            ("wp", True, False),
            ("wth", False, True),
            ("wth-wp", True, True),
            ("wth-wp-vc", True, True),
            ("wth-wp-wec", True, True),
            ("nlp", False, False),
        ],
    )
    def test_wrong_execution_matrix(self, name, wp, wth):
        we = named_config(name).wrong_exec
        assert we.wrong_path is wp
        assert we.wrong_thread is wth

    def test_overrides(self):
        from repro.common.config import CacheConfig

        cfg = named_config(
            "wth-wp-wec",
            n_tus=4,
            sidecar_entries=16,
            l1d=CacheConfig(size=16 * 1024, assoc=4, block_size=64, name="l1d"),
        )
        assert cfg.n_thread_units == 4
        assert cfg.tu.sidecar.entries == 16
        assert cfg.tu.l1d.size == 16 * 1024
        assert cfg.tu.l1d.assoc == 4


class TestTable3:
    def test_rows_keep_total_parallelism_16(self):
        for tus, issue, *_ in TABLE3_ROWS[1:]:
            assert tus * issue == 16

    @pytest.mark.parametrize("n_tus,issue,l1kb", [(1, 16, 32), (2, 8, 16),
                                                  (4, 4, 8), (8, 2, 4), (16, 1, 2)])
    def test_design_points(self, n_tus, issue, l1kb):
        cfg = table3_config(n_tus)
        assert cfg.n_thread_units == n_tus
        assert cfg.tu.issue_width == issue
        assert cfg.tu.l1d.size == l1kb * 1024
        assert cfg.tu.l1d.assoc == 4

    def test_total_l1_constant(self):
        for n in (1, 2, 4, 8, 16):
            cfg = table3_config(n)
            assert cfg.n_thread_units * cfg.tu.l1d.size == 32 * 1024

    def test_single_issue_baseline(self):
        cfg = table3_config(1, single_issue_baseline=True)
        assert cfg.n_thread_units == 1
        assert cfg.tu.issue_width == 1
        assert cfg.tu.rob_size == 8
        assert cfg.tu.l1d.size == 2 * 1024

    def test_unknown_point(self):
        with pytest.raises(ConfigError):
            table3_config(3)

    def test_no_wrong_execution_in_baseline_study(self):
        for n in (1, 2, 4, 8, 16):
            assert not table3_config(n).wrong_exec.any
