"""Hand-checked pipeline arithmetic for the thread-pipelining scheduler.

These tests construct fully deterministic workloads — branchless CFGs,
L1-resident footprints after a priming pass, fixed instruction counts —
so iteration timings are closed-form, and then verify the scheduler's
composition (fork serialization, TU reuse, in-order write-back,
dependence coupling) against hand-computed cycle counts.
"""

from __future__ import annotations

import pytest

from repro.common.config import (
    CacheConfig,
    MachineConfig,
    SidecarConfig,
    SimParams,
    ThreadUnitConfig,
    WrongExecutionConfig,
)
from repro.common.rng import StreamFactory
from repro.isa.cfg import BlockSpec, IterationCFG, MemSlot
from repro.isa.encoding import StageSplit
from repro.sta.machine import Machine
from repro.sta.scheduler import Scheduler
from repro.workloads.patterns import SequentialPattern
from repro.workloads.program import ParallelRegionSpec
from repro.workloads.tracegen import TraceGenerator

#: Deterministic iteration: 100 instructions, no branches, one hot load.
N_INSTR = 100
SPLIT = StageSplit(0.1, 0.1, 0.7, 0.1)


def make_region(dep_coupling: float, iters: int, n_forward: int = 0):
    cfg = IterationCFG(
        entry="a",
        blocks=[BlockSpec("a", N_INSTR, mem_slots=(MemSlot("hot"),))],
    )
    return ParallelRegionSpec(
        name="math.region",
        cfg=cfg,
        patterns={
            # One 64-byte block: resident after the first touch.
            "hot": SequentialPattern("hot", 0x1000, 64, stride=8, per_iter=1,
                                     stagger=False),
        },
        iters_per_invocation=iters,
        stage_split=SPLIT,
        n_forward_values=n_forward,
        ilp=4.0,
        dep_coupling=dep_coupling,
    )


def make_machine(n_tus: int) -> Machine:
    cfg = MachineConfig(
        name="math",
        n_thread_units=n_tus,
        tu=ThreadUnitConfig(
            issue_width=4,
            rob_size=64,
            lsq_size=64,
            l1d=CacheConfig(size=1024, assoc=1, block_size=64, name="l1d"),
            l1i=CacheConfig(size=4096, assoc=2, block_size=64, name="l1i"),
            sidecar=SidecarConfig(),
        ),
        wrong_exec=WrongExecutionConfig(False, False),
        fork_delay=4,
        comm_cycles_per_value=2,
    )
    return Machine(cfg, SimParams(seed=1))


#: Per-iteration base cycles: 100 instructions / min(4, ilp=4) = 25.
BASE = N_INSTR / 4.0
CONT, TSAG, COMP, WB = 2.5, 2.5, 17.5, 2.5  # SPLIT × BASE


def run_region(n_tus: int, dep_coupling: float, iters: int, n_forward: int = 0):
    machine = make_machine(n_tus)
    sched = Scheduler(machine, TraceGenerator(StreamFactory(1)))
    region = make_region(dep_coupling, iters, n_forward)
    # Prime: run one invocation to warm the (one-block) footprint and
    # the I-cache, then measure the second invocation.
    sched.run_parallel_region(region, 0)
    return sched.run_parallel_region(region, 1).cycles


class TestSingleTU:
    def test_serial_sum(self):
        # 1 TU: iterations back-to-back, no fork cost: 4 × 25 cycles.
        assert run_region(1, 0.0, 4) == pytest.approx(4 * BASE)

    def test_coupling_irrelevant_when_serial(self):
        # Fully-coupled and uncoupled are identical on one TU: the
        # dep-ready point (comp_end(i-1)) never exceeds the TU-free time.
        assert run_region(1, 1.0, 4) == pytest.approx(run_region(1, 0.0, 4))


def reference_schedule(n, n_tus, coupling, fork_cost):
    """Independent implementation of the §2.2 pipeline recurrence."""
    tu_free = [0.0] * n_tus
    cont_end = comp_end = wb_end = 0.0
    comp_len_prev = 0.0
    end = 0.0
    for i in range(n):
        if i == 0:
            start = tu_free[0]
        else:
            start = max(cont_end + (fork_cost if n_tus > 1 else 0.0),
                        tu_free[i % n_tus])
        c_end = start + CONT
        t_end = c_end + TSAG
        comp_start = t_end
        if i > 0 and coupling > 0.0:
            comp_start = max(comp_start, comp_end - (1 - coupling) * comp_len_prev)
        cmp_end = comp_start + COMP
        w_start = max(cmp_end, wb_end)
        w_end = w_start + WB
        tu_free[i % n_tus] = w_end
        cont_end, comp_end, wb_end = c_end, cmp_end, w_end
        comp_len_prev = COMP
        end = max(end, w_end)
    return end


class TestTwoTUs:
    @pytest.mark.parametrize("n,coupling,fork", [
        (6, 0.0, 4), (6, 0.5, 4), (6, 1.0, 4), (9, 0.0, 10), (5, 0.25, 4),
    ])
    def test_matches_reference_recurrence(self, n, coupling, fork):
        n_forward = (fork - 4) // 2
        measured = run_region(2, coupling, n, n_forward)
        assert measured == pytest.approx(reference_schedule(n, 2, coupling, fork))

    def test_forward_values_never_speed_up(self):
        n = 6
        without = run_region(2, 0.0, n, n_forward=0)
        with3 = run_region(2, 0.0, n, n_forward=3)
        assert with3 > without
        assert with3 - without == pytest.approx(
            reference_schedule(n, 2, 0.0, 10) - reference_schedule(n, 2, 0.0, 4)
        )

    def test_full_coupling_serializes_computation(self):
        """dep_coupling = 1: comp(i) starts at comp_end(i-1); the steady
        inter-iteration gap becomes COMP (17.5) instead of 6.5."""
        n = 6
        expected = (n - 1) * COMP + BASE
        measured = run_region(2, 1.0, n)
        assert measured == pytest.approx(expected)

    def test_coupling_monotone(self):
        times = [run_region(2, c, 6) for c in (0.0, 0.5, 1.0)]
        assert times[0] < times[1] < times[2]


class TestManyTUs:
    def test_fork_serialization_limits_throughput(self):
        """With plenty of TUs the continuation+fork chain is the only
        serial resource: adding TUs beyond the pipeline depth changes
        nothing."""
        assert run_region(8, 0.0, 8) == pytest.approx(run_region(4, 0.0, 8))

    def test_pipeline_beats_serial(self):
        serial = run_region(1, 0.0, 8)
        piped = run_region(4, 0.0, 8)
        assert piped < serial / 2

    def test_region_cycles_scale_linearly_in_iterations(self):
        short = run_region(4, 0.0, 8)
        long = run_region(4, 0.0, 16)
        # Steady-state throughput: one iteration per (CONT + fork).
        assert long - short == pytest.approx(8 * (CONT + 4))


class TestWriteBackOrder:
    def test_wb_serialization_binds_when_wb_is_long(self):
        """A write-back-heavy split makes in-order WB the bottleneck."""
        wb_heavy = StageSplit(0.05, 0.05, 0.1, 0.8)
        machine = make_machine(4)
        sched = Scheduler(machine, TraceGenerator(StreamFactory(1)))
        region = make_region(0.0, 8)
        region = type(region)(
            **{**region.__dict__, "stage_split": wb_heavy, "name": "math.wb"}
        )
        sched.run_parallel_region(region, 0)
        cycles = sched.run_parallel_region(region, 1).cycles
        # Steady gap = WB stage length = 0.8 × 25 = 20 cycles.
        expected = 7 * 20 + BASE
        assert cycles == pytest.approx(expected)
