"""Tests for analysis helpers: speedups, tables, charts, reports."""

from __future__ import annotations

import pytest

from repro.analysis.plots import bar_chart, grouped_bar_chart
from repro.analysis.report import ExperimentRecord, ShapeCheck, render_report
from repro.analysis.speedup import (
    normalized_times,
    relative_speedups,
    speedup_table_rows,
    suite_average_speedup_pct,
)
from repro.common.errors import AnalysisError
from repro.sim.results import SimResult
from repro.sim.tables import TextTable, format_pct, format_ratio


def result(bench, config, cycles):
    return SimResult(
        benchmark=bench, config=config, n_tus=8,
        total_cycles=cycles, parallel_cycles=cycles / 2,
        sequential_cycles=cycles / 2, instructions=1000,
        seed=1, scale=0.1,
    )


@pytest.fixture
def grid():
    return {
        ("a", "orig"): result("a", "orig", 100.0),
        ("a", "wec"): result("a", "wec", 80.0),
        ("b", "orig"): result("b", "orig", 200.0),
        ("b", "wec"): result("b", "wec", 100.0),
    }


class TestSpeedupHelpers:
    def test_relative_speedups(self, grid):
        rs = relative_speedups(grid, "orig", "wec")
        assert rs["a"] == pytest.approx(25.0)
        assert rs["b"] == pytest.approx(100.0)

    def test_suite_average_is_harmonic(self, grid):
        # speedups 1.25 and 2.0 -> harmonic mean = 2/(0.8+0.5) ≈ 1.538.
        avg = suite_average_speedup_pct(grid, "orig", "wec")
        assert avg == pytest.approx((2 / (1 / 1.25 + 1 / 2.0) - 1) * 100)

    def test_normalized_times(self, grid):
        nt = normalized_times(grid, "orig", "wec")
        assert nt["a"] == pytest.approx(0.8)
        assert nt["b"] == pytest.approx(0.5)

    def test_table_rows_include_average(self, grid):
        rows = speedup_table_rows(grid, "orig")
        names = [name for name, _ in rows]
        assert names == ["a", "b", "average"]
        assert "wec" in rows[0][1]
        assert "orig" not in rows[0][1]

    def test_missing_label_raises(self, grid):
        with pytest.raises(AnalysisError):
            relative_speedups(grid, "orig", "ghost")

    def test_table_rows_incomplete_grid_raises_named(self, grid):
        # An incomplete grid must raise AnalysisError naming the missing
        # (benchmark, label) cell, not a bare KeyError (consistency with
        # relative_speedups / normalized_times / suite_average).
        del grid[("b", "wec")]
        with pytest.raises(AnalysisError, match=r"b for 'wec'"):
            speedup_table_rows(grid, "orig")

    def test_table_rows_missing_baseline_raises_named(self, grid):
        del grid[("a", "orig")]
        with pytest.raises(AnalysisError, match=r"a for 'orig'"):
            speedup_table_rows(grid, "orig")


class TestTextTable:
    def test_render_alignment(self):
        t = TextTable("Figure X", ["bench", "speedup"])
        t.add_row(["mcf", "+18.5%"])
        t.add_row(["vpr", None])
        out = t.render()
        assert "Figure X" in out
        assert "+18.5%" in out
        assert "-" in out
        lines = out.splitlines()
        assert all(len(l) <= max(len(x) for x in lines) for l in lines)

    def test_row_width_mismatch(self):
        t = TextTable("t", ["a", "b"])
        with pytest.raises(AnalysisError):
            t.add_row(["only-one"])

    def test_float_formatting(self):
        t = TextTable("t", ["a"])
        t.add_row([1.23456])
        assert "1.23" in t.render()

    def test_no_columns_rejected(self):
        with pytest.raises(AnalysisError):
            TextTable("t", [])

    def test_format_helpers(self):
        assert format_pct(9.7) == "+9.7%"
        assert format_pct(9.7, signed=False) == "9.7%"
        assert format_pct(None) == "-"
        assert format_ratio(1.5) == "1.50"
        assert format_ratio(None) == "-"


class TestCharts:
    def test_bar_chart(self):
        out = bar_chart("speedups", {"mcf": 18.5, "vpr": -2.0})
        assert "mcf" in out and "+18.5%" in out
        assert "-2.0%" in out
        # negative bars use a distinct fill
        assert "-" in out.splitlines()[2]

    def test_bar_chart_empty(self):
        with pytest.raises(AnalysisError):
            bar_chart("x", {})

    def test_grouped(self):
        out = grouped_bar_chart(
            "fig", ["mcf"], {"wec": {"mcf": 10.0}, "nlp": {"mcf": 5.0}}
        )
        assert "wec" in out and "nlp" in out

    def test_grouped_empty(self):
        with pytest.raises(AnalysisError):
            grouped_bar_chart("fig", [], {})


class TestReport:
    def test_record_render(self):
        rec = ExperimentRecord(
            exp_id="Figure 11",
            title="Configuration speedups",
            workload="6 benchmarks, 8 TUs",
            bench_target="benchmarks/bench_fig11_configs.py",
        )
        rec.add_check("wec beats nlp", "9.7 > 5.5", "9.2 > 5.1", True)
        rec.add_check("mcf is max", "18.5", "25.0", False)
        out = rec.render()
        assert "[PASS]" in out and "[FAIL]" in out
        assert not rec.passed

    def test_render_report(self):
        rec = ExperimentRecord("T2", "Table 2", "static", "bench_tables.py")
        rec.add_check("fractions", "x", "x", True)
        out = render_report([rec], header="# Experiments")
        assert "1/1 experiments" in out
        assert "# Experiments" in out

    def test_render_empty_rejected(self):
        with pytest.raises(AnalysisError):
            render_report([])
