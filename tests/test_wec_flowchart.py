"""Exhaustive enumeration of the Figure 6 WEC access flowchart.

Every path through the paper's flowchart gets its own test, with the
cache state inspected before and after.  Block geometry: 4-block
direct-mapped L1 (64B blocks), 2-entry WEC, so set conflicts are easy
to construct (blocks b and b+4 collide).
"""

from __future__ import annotations

import pytest

from repro.common.config import (
    CacheConfig,
    MemorySystemConfig,
    SidecarConfig,
    SidecarKind,
)
from repro.mem.cache import DIRTY, PREFETCHED, WRONG
from repro.mem.hierarchy import HIT_LATENCY, TUMemSystem
from repro.mem.l2 import SharedL2


def addr(block: int) -> int:
    return block * 64


@pytest.fixture
def mem():
    l2 = SharedL2(
        MemorySystemConfig(
            l2=CacheConfig(size=32 * 1024, assoc=4, block_size=128,
                           hit_latency=12, name="l2")
        )
    )
    return TUMemSystem(
        0,
        CacheConfig(size=256, assoc=1, block_size=64, name="l1d"),
        CacheConfig(size=1024, assoc=2, block_size=64, name="l1i"),
        SidecarConfig(kind=SidecarKind.WEC, entries=2),
        l2,
    )


class TestCorrectPathBranches:
    """Left half of Figure 6: accesses from the correct execution path."""

    def test_l1_hit_updates_lru_only(self, mem):
        mem.load_correct(addr(0))
        mem.load_correct(addr(1))
        snapshot = dict(mem.l1d.resident_blocks())
        lat = mem.load_correct(addr(0))
        assert lat == HIT_LATENCY
        assert dict(mem.l1d.resident_blocks()) == snapshot
        assert len(mem.sidecar) == 0

    def test_l1_miss_wec_miss_fills_l1_and_victim_caches(self, mem):
        mem.load_correct(addr(0))
        mem.load_correct(addr(4))  # conflict: evicts 0
        assert 4 in mem.l1d
        assert 0 not in mem.l1d
        assert mem.sidecar.probe(0) is not None  # victim parked in WEC

    def test_l1_miss_wec_hit_swaps_blocks(self, mem):
        mem.load_correct(addr(0))
        mem.load_correct(addr(4))   # 0 -> WEC
        mem.load_correct(addr(0))   # swap back
        assert 0 in mem.l1d
        assert 4 not in mem.l1d
        assert mem.sidecar.probe(4) is not None
        assert mem.sidecar.probe(0) is None

    def test_swap_preserves_dirty(self, mem):
        mem.store_correct(addr(0))          # dirty
        mem.load_correct(addr(4))           # dirty 0 -> WEC
        assert mem.sidecar.probe(0) & DIRTY
        mem.load_correct(addr(0))           # swap back
        assert mem.l1d.probe(0) & DIRTY     # dirtiness survives the trip

    def test_wec_hit_on_wrong_block_prefetches_next_line(self, mem):
        mem.load_wrong(addr(8))
        mem.load_correct(addr(8))
        assert mem.sidecar.probe(9) is not None
        assert mem.sidecar.probe(9) & PREFETCHED

    def test_wec_hit_on_prefetched_block_extends_chain(self, mem):
        mem.load_wrong(addr(8))
        mem.load_correct(addr(8))   # prefetch 9
        mem.load_correct(addr(9))   # hit prefetched 9: prefetch 10
        assert mem.sidecar.probe(10) is not None

    def test_wec_hit_on_plain_victim_no_prefetch(self, mem):
        mem.load_correct(addr(0))
        mem.load_correct(addr(4))
        mem.load_correct(addr(0))   # victim recovery
        assert mem.stats["prefetches"] == 0

    def test_prefetch_skips_resident_target(self, mem):
        mem.load_correct(addr(9))   # 9 resident in L1
        mem.load_wrong(addr(8))
        mem.load_correct(addr(8))   # would prefetch 9, but it's resident
        assert mem.stats["prefetches"] == 0


class TestWrongPathBranches:
    """Right half of Figure 6: wrong-execution accesses."""

    def test_wrong_l1_hit_no_state_change(self, mem):
        mem.load_correct(addr(3))
        wec_before = list(mem.sidecar.items())
        lat = mem.load_wrong(addr(3))
        assert lat == HIT_LATENCY
        assert list(mem.sidecar.items()) == wec_before

    def test_wrong_wec_hit_refreshes_lru(self, mem):
        mem.load_wrong(addr(8))
        mem.load_wrong(addr(9))     # WEC now [8, 9]
        mem.load_wrong(addr(8))     # refresh 8
        mem.load_wrong(addr(10))    # evicts 9
        assert mem.sidecar.probe(8) is not None
        assert mem.sidecar.probe(9) is None

    def test_wrong_double_miss_fills_wec_marked_wrong(self, mem):
        mem.load_wrong(addr(8))
        assert mem.sidecar.probe(8) & WRONG
        assert 8 not in mem.l1d

    def test_wrong_fill_never_evicts_l1(self, mem):
        for b in range(4):
            mem.load_correct(addr(b))
        l1_before = set(b for b, _ in mem.l1d.resident_blocks())
        for b in range(8, 16):
            mem.load_wrong(addr(b))
        assert set(b for b, _ in mem.l1d.resident_blocks()) == l1_before

    def test_wrong_fills_evict_each_other_in_wec(self, mem):
        for b in range(8, 12):
            mem.load_wrong(addr(b))
        assert len(mem.sidecar) == 2  # capacity
        assert mem.sidecar.probe(10) is not None
        assert mem.sidecar.probe(11) is not None


class TestStorePaths:
    def test_store_miss_both_fills_l1_dirty(self, mem):
        mem.store_correct(addr(0))
        assert mem.l1d.probe(0) & DIRTY

    def test_store_wec_hit_promotes_dirty_without_prefetch(self, mem):
        mem.load_wrong(addr(8))
        mem.store_correct(addr(8))
        assert mem.l1d.probe(8) & DIRTY
        assert mem.stats["prefetches"] == 0  # only loads trigger (paper)

    def test_store_hit_sets_dirty_once(self, mem):
        mem.store_correct(addr(0))
        mem.store_correct(addr(0))
        assert mem.l1d.probe(0) & DIRTY


class TestWritebackPaths:
    def test_dirty_wec_victim_written_back(self, mem):
        mem.store_correct(addr(0))
        mem.load_correct(addr(4))   # dirty 0 -> WEC
        mem.load_wrong(addr(8))
        mem.load_wrong(addr(9))     # bump dirty 0 out of 2-entry WEC
        assert mem.stats["writebacks"] == 1

    def test_clean_wec_victim_silent(self, mem):
        mem.load_correct(addr(0))
        mem.load_correct(addr(4))   # clean 0 -> WEC
        mem.load_wrong(addr(8))
        mem.load_wrong(addr(9))
        assert mem.stats["writebacks"] == 0

    def test_writeback_reaches_l2_dirty(self, mem):
        mem.store_correct(addr(0))
        mem.load_correct(addr(4))
        mem.load_wrong(addr(8))
        mem.load_wrong(addr(9))
        l2block = mem.l2.cache.block_of(addr(0))
        assert mem.l2.cache.probe(l2block) & DIRTY
