"""Tests for the performance observatory (repro.obs ledger/compare/hostprof).

Covers the ledger round-trip and export validation, the benchstat-style
comparison engine's edge cases (single samples, zero variance, missing
metrics, sign conventions), host self-profiling (including the ≤5%
overhead budget on the recorded path), and the executor's automatic
recording under ``$REPRO_PERF_DIR``.
"""

from __future__ import annotations

import json
import time

import pytest

from repro import SimParams, named_config
from repro.common.errors import AnalysisError
from repro.obs.compare import (
    ALPHA,
    METRICS_BY_NAME,
    MetricDef,
    bootstrap_delta_ci,
    compare_records,
    compare_samples,
    mann_whitney_u,
    parse_threshold,
)
from repro.obs.hostprof import HostProfiler, TracerOverheadProxy, peak_rss_kb
from repro.obs.ledger import (
    EXPORT_KIND,
    LEDGER_SCHEMA_VERSION,
    Ledger,
    PerfRecord,
    default_perf_dir,
    load_records,
    validate_export,
    write_export,
)
from repro.obs.tracer import RingBufferTracer
from repro.sim.driver import run_program
from repro.sim.executor import SweepCell, default_engine, run_cells
from repro.workloads.benchmarks import build_benchmark

TINY = SimParams(seed=7, scale=2e-5, warmup_invocations=0)


def make_record(
    benchmark="181.mcf",
    config="wth-wp-wec",
    seed=7,
    scale=2e-5,
    cycles=1000.0,
    wall_s=0.5,
    label="",
    **sim_extra,
):
    sim = {"total_cycles": cycles, "ipc": 0.5, "l1_miss_rate": 0.4}
    sim.update(sim_extra)
    return PerfRecord(
        benchmark=benchmark,
        config=config,
        seed=seed,
        scale=scale,
        sim=sim,
        host={"wall_s": wall_s, "events_per_sec": 1000.0 / wall_s},
        label=label,
        ts=123.0,
    )


# ---------------------------------------------------------------------------
# Ledger
# ---------------------------------------------------------------------------


class TestLedger:
    def test_round_trip(self, tmp_path):
        ledger = Ledger(tmp_path)
        rec = make_record(label="a")
        ledger.append(rec)
        ledger.append(make_record(label="b", cycles=2000.0))
        got = ledger.records()
        assert len(got) == 2
        assert got[0].to_dict() == rec.to_dict()
        assert got[0].group_key == ("181.mcf", "wth-wp-wec", 7, 2e-5)

    def test_label_filter(self, tmp_path):
        ledger = Ledger(tmp_path)
        ledger.append(make_record(label="before"))
        ledger.append(make_record(label="after"))
        ledger.append(make_record(label="before"))
        assert len(ledger.records(label="before")) == 2
        assert len(ledger.records(label="nope")) == 0

    def test_unknown_schema_and_garbage_lines_skipped(self, tmp_path):
        ledger = Ledger(tmp_path)
        ledger.append(make_record())
        with open(ledger.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps({"schema": 999, "benchmark": "x"}) + "\n")
            fh.write("not json at all\n")
            fh.write("\n")
        with pytest.warns(RuntimeWarning):
            got = ledger.records()
        assert len(got) == 1

    def test_empty_dir_is_empty(self, tmp_path):
        assert Ledger(tmp_path / "nothing").records() == []

    def test_default_perf_dir_from_env(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_PERF_DIR", raising=False)
        assert default_perf_dir() is None
        monkeypatch.setenv("REPRO_PERF_DIR", str(tmp_path))
        assert default_perf_dir() == tmp_path


class TestExport:
    def test_write_validate_load(self, tmp_path):
        path = write_export([make_record(), make_record(cycles=2.0)],
                            tmp_path / "export.json")
        doc = json.loads(path.read_text())
        assert doc["kind"] == EXPORT_KIND
        assert doc["schema"] == LEDGER_SCHEMA_VERSION
        assert validate_export(doc) == []
        records = load_records(path)
        assert len(records) == 2

    def test_validate_catches_problems(self):
        assert validate_export([]) == ["export is not a JSON object"]
        doc = {"kind": "wrong", "schema": 999, "records": [{}],
               "n_records": 5}
        problems = validate_export(doc)
        assert any("kind" in p for p in problems)
        assert any("schema" in p for p in problems)
        assert any("n_records" in p for p in problems)
        assert any("missing 'benchmark'" in p for p in problems)

    def test_load_records_errors(self, tmp_path):
        with pytest.raises(AnalysisError, match="no such perf source"):
            load_records(tmp_path / "missing.json")
        with pytest.raises(AnalysisError, match="no perf records"):
            load_records(tmp_path)  # empty dir
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        with pytest.raises(AnalysisError, match="not a valid perf export"):
            load_records(bad)

    def test_load_records_from_ledger_dir(self, tmp_path):
        Ledger(tmp_path).append(make_record())
        assert len(load_records(tmp_path)) == 1
        assert len(load_records(tmp_path / "ledger.jsonl")) == 1


# ---------------------------------------------------------------------------
# Comparison engine
# ---------------------------------------------------------------------------

DET = METRICS_BY_NAME["total_cycles"]       # deterministic, lower-better
STOCH = METRICS_BY_NAME["wall_s"]           # stochastic, lower-better


class TestCompareSamples:
    def test_deterministic_single_sample_delta_is_significant(self):
        mc = compare_samples([100.0], [110.0], DET)
        assert mc.significant
        assert mc.worsened
        assert mc.delta_pct == pytest.approx(10.0)
        assert mc.is_regression(5.0)
        assert not mc.is_regression(15.0)

    def test_deterministic_identical_is_insignificant(self):
        mc = compare_samples([100.0], [100.0], DET)
        assert not mc.significant
        assert mc.note == "identical"
        assert not mc.worsened

    def test_stochastic_single_sample_never_significant(self):
        mc = compare_samples([1.0], [100.0], STOCH)
        assert not mc.significant
        assert "insignificant-by-construction" in mc.note
        assert mc.delta_pct == pytest.approx(9900.0)

    def test_zero_variance_series(self):
        mc = compare_samples([2.0] * 4, [2.0] * 4, STOCH)
        assert mc.delta_pct == 0.0
        assert not mc.significant
        assert mc.p == 1.0

    def test_clearly_separated_series_is_significant(self):
        mc = compare_samples([1.0, 1.1, 0.9, 1.05],
                             [2.0, 2.1, 1.9, 2.05], STOCH)
        assert mc.p < ALPHA
        assert mc.significant
        assert mc.worsened  # wall_s went up

    def test_sign_conventions(self):
        ipc = METRICS_BY_NAME["ipc"]            # higher is better
        miss = METRICS_BY_NAME["l1_miss_rate"]  # lower is better
        assert compare_samples([2.0], [1.0], ipc).worsened
        assert not compare_samples([1.0], [2.0], ipc).worsened
        assert compare_samples([0.1], [0.2], miss).worsened
        assert not compare_samples([0.2], [0.1], miss).worsened

    def test_empty_side_raises(self):
        with pytest.raises(AnalysisError):
            compare_samples([], [1.0], DET)


class TestStatsPrimitives:
    def test_mann_whitney_separated(self):
        u, p = mann_whitney_u([1, 2, 3, 4], [10, 11, 12, 13])
        assert u == 0
        assert p < 0.05

    def test_mann_whitney_overlapping(self):
        _, p = mann_whitney_u([1, 3, 5, 7], [2, 4, 6, 8])
        assert p > 0.05

    def test_mann_whitney_all_tied(self):
        _, p = mann_whitney_u([5, 5], [5, 5])
        assert p == 1.0

    def test_bootstrap_deterministic_and_brackets_delta(self):
        ref = [10.0, 11.0, 9.0, 10.5]
        new = [12.0, 13.0, 11.0, 12.5]
        ci1 = bootstrap_delta_ci(ref, new)
        ci2 = bootstrap_delta_ci(ref, new)
        assert ci1 == ci2  # fixed seed
        assert ci1[0] <= 20.0 <= ci1[1]  # point delta ~ +19.8%

    def test_bootstrap_single_sample_collapses(self):
        assert bootstrap_delta_ci([10.0], [11.0]) == (10.0, 10.0)

    def test_parse_threshold(self):
        assert parse_threshold("10%") == 10.0
        assert parse_threshold("10") == 10.0
        assert parse_threshold("0.1") == pytest.approx(10.0)
        assert parse_threshold("1") == 100.0  # ≤1 without % is a fraction
        with pytest.raises(AnalysisError):
            parse_threshold("abc")
        with pytest.raises(AnalysisError):
            parse_threshold("-5%")


class TestCompareRecords:
    def test_missing_metric_on_one_side_reported_not_raised(self):
        ref = [make_record(wec_hit_rate=0.3)]
        new = [make_record()]
        report = compare_records(ref, new)
        group = report.groups[0]
        assert group.missing["wec_hit_rate"] == "ref-only"
        assert "total_cycles" in group.metrics

    def test_unmatched_groups_reported(self):
        ref = [make_record(benchmark="181.mcf")]
        new = [make_record(benchmark="181.mcf"),
               make_record(benchmark="175.vpr")]
        report = compare_records(ref, new)
        assert report.unmatched == {("175.vpr", "wth-wp-wec"): "new"}

    def test_no_overlap_raises(self):
        with pytest.raises(AnalysisError, match="no overlapping"):
            compare_records([make_record(benchmark="a")],
                            [make_record(benchmark="b")])

    def test_unknown_metric_name_raises(self):
        recs = [make_record()]
        with pytest.raises(AnalysisError, match="unknown metric"):
            compare_records(recs, recs, metrics=["bogus"])

    def test_regressions_and_render(self):
        ref = [make_record(cycles=1000.0)]
        new = [make_record(cycles=1200.0)]
        report = compare_records(ref, new, metrics=["total_cycles"])
        regs = report.regressions(10.0)
        assert len(regs) == 1
        assert regs[0][1].metric.name == "total_cycles"
        assert report.regressions(25.0) == []
        text = report.render(10.0)
        assert "REGRESSION" in text
        assert "total_cycles" in text

    def test_suite_speedup_rollup(self):
        # new side 20% fewer cycles on both benchmarks -> +25% speedup.
        ref = [make_record(benchmark="a", cycles=1000.0),
               make_record(benchmark="b", cycles=500.0)]
        new = [make_record(benchmark="a", cycles=800.0),
               make_record(benchmark="b", cycles=400.0)]
        report = compare_records(ref, new, metrics=["total_cycles"])
        assert report.suite_speedup_pct == pytest.approx(25.0)
        assert report.rollup_delta_pct["total_cycles"] == pytest.approx(-20.0)


# ---------------------------------------------------------------------------
# Host self-profiling
# ---------------------------------------------------------------------------


class TestHostProfiler:
    def test_sections_accumulate(self):
        prof = HostProfiler()
        assert not prof
        prof.add("a", 0.25)
        prof.add("a", 0.75)
        prof.add("b", 0.5)
        assert prof
        assert prof.seconds("a") == pytest.approx(1.0)
        assert prof.calls("a") == 2
        snap = prof.snapshot(total_wall_s=2.0)
        assert snap["a"]["pct"] == pytest.approx(50.0)
        assert snap["b"] == {"s": 0.5, "calls": 1, "pct": 25.0}

    def test_wrap_tracer_times_emits(self):
        prof = HostProfiler()
        inner = RingBufferTracer(capacity=64)
        proxy = prof.wrap_tracer(inner)
        assert isinstance(proxy, TracerOverheadProxy)
        proxy.now = 42.0
        proxy.emit(1, 0, 5)
        assert prof.calls("tracer.emit") == 1
        events = inner.events()
        assert len(events) == 1
        assert events[0].cycle == 42.0

    def test_wrap_tracer_passthrough_when_absent(self):
        prof = HostProfiler()
        assert prof.wrap_tracer(None) is None

    def test_peak_rss_positive_on_posix(self):
        rss = peak_rss_kb()
        assert rss is None or rss > 0

    def test_profiled_run_is_bit_identical(self):
        program = build_benchmark("181.mcf", TINY.scale)
        cfg = named_config("wth-wp-wec")
        plain = run_program(program, cfg, TINY)
        prof = HostProfiler()
        profiled = run_program(program, cfg, TINY, profiler=prof)
        assert profiled.to_dict() == plain.to_dict()
        # The expected coarse sections all fired.
        for section in ("scheduler.parallel", "scheduler.sequential",
                        "tu.ifetch", "tu.replay"):
            assert prof.calls(section) > 0, section

    def test_profiling_overhead_within_budget(self):
        # Acceptance bound: turning recording on may not cost more than
        # 5% wall time.  Interleaved min-of-N on both variants defeats
        # scheduler noise; the absolute epsilon absorbs timer jitter on
        # these ~30ms runs.
        program = build_benchmark("181.mcf", TINY.scale)
        cfg = named_config("wth-wp-wec")
        run_program(program, cfg, TINY)  # warm caches/JIT-ish costs
        t_off, t_on = [], []
        for _ in range(5):
            t0 = time.perf_counter()
            run_program(program, cfg, TINY)
            t_off.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            run_program(program, cfg, TINY, profiler=HostProfiler())
            t_on.append(time.perf_counter() - t0)
        assert min(t_on) <= min(t_off) * 1.05 + 0.02, (
            f"profiling overhead over budget: off={min(t_off):.4f}s "
            f"on={min(t_on):.4f}s"
        )


# ---------------------------------------------------------------------------
# Executor auto-recording
# ---------------------------------------------------------------------------


def _cells(*names):
    return [SweepCell("181.mcf", n, named_config(n), TINY) for n in names]


class TestExecutorRecording:
    def test_records_executed_cells_with_speedup(self, tmp_path):
        run_cells(_cells("orig", "wth-wp-wec"), cache=False,
                  perf=True, perf_dir=tmp_path, perf_context="unit")
        records = Ledger(tmp_path).records()
        assert len(records) == 2
        by_config = {r.config: r for r in records}
        assert by_config["orig"].sim.get("speedup_pct") is None
        assert by_config["wth-wp-wec"].sim["speedup_pct"] > 0
        rec = by_config["wth-wp-wec"]
        assert rec.context == "unit"
        assert rec.host["wall_s"] > 0
        assert rec.host["events_per_sec"] > 0
        # The oracle profiles per component; the fast engine reports the
        # whole run under one section.  Honour $REPRO_ENGINE so the
        # engine=fast CI leg exercises its own profile shape.
        section = ("engine.fast" if default_engine() == "fast"
                   else "tu.replay")
        assert rec.profile and section in rec.profile
        assert rec.provenance["engine"] == default_engine()
        assert rec.provenance["code_token"]
        assert rec.provenance["config_fp"] != rec.provenance["params_fp"]

    def test_cache_hits_are_not_recorded(self, tmp_path):
        cache_dir = tmp_path / "cache"
        perf_dir = tmp_path / "perf"
        run_cells(_cells("orig"), cache=True, cache_dir=cache_dir,
                  perf=True, perf_dir=perf_dir)
        run_cells(_cells("orig"), cache=True, cache_dir=cache_dir,
                  perf=True, perf_dir=perf_dir)
        assert len(Ledger(perf_dir).records()) == 1

    def test_env_var_enables_recording(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PERF_DIR", str(tmp_path))
        run_cells(_cells("orig"), cache=False)
        assert len(Ledger(tmp_path).records()) == 1

    def test_off_by_default(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_PERF_DIR", raising=False)
        run_cells(_cells("orig"), cache=False)
        assert not (tmp_path / "ledger.jsonl").exists()

    def test_parallel_path_records_too(self, tmp_path):
        run_cells(_cells("orig", "wth-wp-wec", "nlp"), jobs=2, cache=False,
                  perf=True, perf_dir=tmp_path)
        records = Ledger(tmp_path).records()
        assert len(records) == 3
        assert all(r.host["wall_s"] > 0 for r in records)

    def test_ledger_round_trips_through_compare(self, tmp_path):
        run_cells(_cells("orig", "wth-wp-wec"), cache=False,
                  perf=True, perf_dir=tmp_path)
        records = Ledger(tmp_path).records()
        report = compare_records(records, records)
        assert report.regressions(0.0) == []


class TestCommittedBaseline:
    def test_committed_baseline_is_a_valid_export(self):
        # The CI perf gate compares BENCH_smoke.json against this file;
        # both come from write_export, so validating the committed one
        # pins the format for both.
        from pathlib import Path
        path = Path(__file__).parent.parent / "benchmarks" / \
            "BENCH_baseline.json"
        doc = json.loads(path.read_text())
        assert validate_export(doc) == []
        records = load_records(path)
        assert len(records) == doc["n_records"]
        assert all(r.context == "bench" for r in records)
