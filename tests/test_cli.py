"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--benchmark", "mcf"])
        assert args.config == "wth-wp-wec"
        assert args.scale == 2e-4
        assert args.tus == 8

    def test_run_rejects_unknown_config(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--benchmark", "mcf", "--config", "magic"]
            )

    def test_compare_config_list(self):
        args = build_parser().parse_args(
            ["compare", "--benchmark", "vpr", "--configs", "vc,nlp"]
        )
        assert args.configs == "vc,nlp"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "181.mcf" in out
        assert "wth-wp-wec" in out

    def test_run(self, capsys):
        rc = main(
            ["run", "--benchmark", "gzip", "--config", "orig",
             "--scale", "2e-5", "--tus", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "cycles" in out and "ipc" in out

    def test_run_wec_reports_wrong_loads(self, capsys):
        main(["run", "--benchmark", "gzip", "--config", "wth-wp-wec",
              "--scale", "2e-5", "--tus", "2"])
        assert "wrong loads" in capsys.readouterr().out

    def test_compare(self, capsys):
        rc = main(
            ["compare", "--benchmark", "vpr", "--configs", "vc",
             "--scale", "2e-5", "--tus", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "vc" in out

    def test_compare_unknown_config(self, capsys):
        rc = main(
            ["compare", "--benchmark", "vpr", "--configs", "vc,nosuch",
             "--scale", "2e-5"]
        )
        assert rc == 2
        assert "unknown configuration" in capsys.readouterr().err

    def test_suite(self, capsys):
        rc = main(["suite", "--config", "vc", "--scale", "1e-5", "--tus", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "average" in out
        for bench in ("175.vpr", "177.mesa"):
            assert bench in out
