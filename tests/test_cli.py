"""Tests for the ``python -m repro`` command-line interface.

Exit-code convention (covered below for ``trace`` and ``perf``):
0 = success, 1 = failed run or significant perf regression,
2 = usage error.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.obs.ledger import Ledger, validate_export
from tests.test_perf_obs import make_record


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--benchmark", "mcf"])
        assert args.config == "wth-wp-wec"
        assert args.scale == 2e-4
        assert args.tus == 8

    def test_run_rejects_unknown_config(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--benchmark", "mcf", "--config", "magic"]
            )

    def test_compare_config_list(self):
        args = build_parser().parse_args(
            ["compare", "--benchmark", "vpr", "--configs", "vc,nlp"]
        )
        assert args.configs == "vc,nlp"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "181.mcf" in out
        assert "wth-wp-wec" in out

    def test_run(self, capsys):
        rc = main(
            ["run", "--benchmark", "gzip", "--config", "orig",
             "--scale", "2e-5", "--tus", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "cycles" in out and "ipc" in out

    def test_run_wec_reports_wrong_loads(self, capsys):
        main(["run", "--benchmark", "gzip", "--config", "wth-wp-wec",
              "--scale", "2e-5", "--tus", "2"])
        assert "wrong loads" in capsys.readouterr().out

    def test_compare(self, capsys):
        rc = main(
            ["compare", "--benchmark", "vpr", "--configs", "vc",
             "--scale", "2e-5", "--tus", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "vc" in out

    def test_compare_unknown_config(self, capsys):
        rc = main(
            ["compare", "--benchmark", "vpr", "--configs", "vc,nosuch",
             "--scale", "2e-5"]
        )
        assert rc == 2
        assert "unknown configuration" in capsys.readouterr().err

    def test_suite(self, capsys):
        rc = main(["suite", "--config", "vc", "--scale", "1e-5", "--tus", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "average" in out
        for bench in ("175.vpr", "177.mesa"):
            assert bench in out


class TestTraceExitCodes:
    def test_ok_run_returns_0(self, tmp_path, capsys):
        rc = main(["trace", "164.gzip", "wth-wp-wec", "--scale", "1e-5",
                   "--tus", "2", "--out", str(tmp_path / "t.json")])
        assert rc == 0
        assert "trace" in capsys.readouterr().out

    def test_unknown_benchmark_is_usage_error(self, tmp_path, capsys):
        rc = main(["trace", "999.nope", "wth-wp-wec",
                   "--out", str(tmp_path / "t.json")])
        assert rc == 2
        assert "trace:" in capsys.readouterr().err

    def test_bad_event_category_is_usage_error(self, tmp_path, capsys):
        rc = main(["trace", "164.gzip", "wth-wp-wec", "--events", "bogus",
                   "--out", str(tmp_path / "t.json")])
        assert rc == 2
        assert "trace:" in capsys.readouterr().err


RECORD_ARGS = ["perf", "record", "181.mcf", "wth-wp-wec",
               "--scale", "2e-5", "--tus", "2"]


class TestPerfCli:
    def test_record_appends_and_reports_0(self, tmp_path, capsys):
        rc = main(RECORD_ARGS + ["--dir", str(tmp_path), "--repeat", "2",
                                 "--label", "x"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "ledger" in out
        records = Ledger(tmp_path).records(label="x")
        assert len(records) == 2
        assert records[0].context == "cli.perf.record"
        assert records[0].sim["speedup_pct"] > 0

    def test_record_unknown_benchmark_is_usage_error(self, tmp_path, capsys):
        rc = main(["perf", "record", "999.nope", "orig",
                   "--dir", str(tmp_path)])
        assert rc == 2
        assert "perf record:" in capsys.readouterr().err

    def test_record_bad_repeat_is_usage_error(self, tmp_path, capsys):
        rc = main(RECORD_ARGS + ["--dir", str(tmp_path), "--repeat", "0"])
        assert rc == 2

    def test_identical_sides_compare_clean(self, tmp_path, capsys):
        assert main(RECORD_ARGS + ["--dir", str(tmp_path),
                                   "--label", "a"]) == 0
        assert main(RECORD_ARGS + ["--dir", str(tmp_path),
                                   "--label", "b"]) == 0
        rc = main(["perf", "compare", "a", "b", "--dir", str(tmp_path),
                   "--threshold", "10%"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "no significant regressions" in out
        assert "identical" in out  # deterministic sim metrics match

    def test_regression_returns_1(self, tmp_path, capsys):
        ref, new = Ledger(tmp_path / "ref"), Ledger(tmp_path / "new")
        ref.append(make_record(cycles=1000.0))
        new.append(make_record(cycles=1200.0))  # deterministic +20%
        rc = main(["perf", "compare", str(tmp_path / "ref"),
                   str(tmp_path / "new"), "--threshold", "10%"])
        assert rc == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.out
        assert "regression" in captured.err

    def test_missing_side_is_usage_error(self, tmp_path, capsys):
        rc = main(["perf", "compare", "nolabel", "nolabel",
                   "--dir", str(tmp_path)])
        assert rc == 2
        assert "perf compare:" in capsys.readouterr().err

    def test_bad_threshold_is_usage_error(self, tmp_path, capsys):
        Ledger(tmp_path).append(make_record())
        rc = main(["perf", "compare", str(tmp_path), str(tmp_path),
                   "--threshold", "lots"])
        assert rc == 2

    def test_unknown_metric_is_usage_error(self, tmp_path, capsys):
        Ledger(tmp_path).append(make_record())
        rc = main(["perf", "compare", str(tmp_path), str(tmp_path),
                   "--metrics", "bogus"])
        assert rc == 2

    def test_report_renders_markdown_and_exports(self, tmp_path, capsys):
        assert main(RECORD_ARGS + ["--dir", str(tmp_path)]) == 0
        out_json = tmp_path / "export.json"
        rc = main(["perf", "report", "--dir", str(tmp_path),
                   "--json", str(out_json)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "# Performance trajectory" in out
        assert "181.mcf / wth-wp-wec" in out
        assert "Latest host profile" in out
        doc = json.loads(out_json.read_text())
        assert validate_export(doc) == []

    def test_report_empty_ledger_is_usage_error(self, tmp_path, capsys):
        rc = main(["perf", "report", "--dir", str(tmp_path)])
        assert rc == 2
        assert "perf report:" in capsys.readouterr().err

    def test_report_unknown_label_is_usage_error(self, tmp_path, capsys):
        Ledger(tmp_path).append(make_record(label="real"))
        rc = main(["perf", "report", "--dir", str(tmp_path),
                   "--label", "ghost"])
        assert rc == 2


@pytest.fixture(scope="module")
def fidelity_export(tmp_path_factory):
    """One tiny committed-style campaign export shared by the CLI tests.

    fig11-only at a tiny scale: enough cells for the fig11/fig17 gate
    claims to evaluate (everything else scores skipped-with-reason).
    """
    import os

    root = tmp_path_factory.mktemp("fidelity")
    out = root / "baseline.json"
    saved = os.environ.get("REPRO_PERF_DIR")  # --dir exports it to workers
    try:
        rc = main(["fidelity", "run", "--scale", "2e-6",
                   "--sections", "fig11", "--engine", "fast", "--no-cache",
                   "--dir", str(root / "perf"),
                   "--out", str(out), "--md", str(root / "FIDELITY.md")])
        assert rc == 0
        yield root, out
    finally:
        if saved is None:
            os.environ.pop("REPRO_PERF_DIR", None)
        else:
            os.environ["REPRO_PERF_DIR"] = saved


class TestFidelityCli:
    def test_run_parser_defaults(self):
        args = build_parser().parse_args(["fidelity", "run"])
        assert args.scale == 2e-4
        assert args.seed == 2003
        assert args.via == "local"
        assert args.perturb is None

    def test_check_parser_defaults(self):
        args = build_parser().parse_args(["fidelity", "check", "b.json"])
        assert args.threshold == "10%"
        assert args.new is None

    def test_run_scores_every_claim(self, fidelity_export):
        from repro.obs.fidelity import load_claims, validate_fidelity_export
        root, out = fidelity_export
        doc = json.loads(out.read_text())
        assert validate_fidelity_export(doc) == []
        assert len(doc["claims"]) == len(load_claims())
        assert all(c["status"] != "skipped" or c["reason"]
                   for c in doc["claims"])
        md = (root / "FIDELITY.md").read_text()
        assert md.startswith("# Fidelity report")
        assert (root / "perf" / "fidelity.jsonl").is_file()

    def test_run_unknown_section_is_usage_error(self, tmp_path, capsys):
        rc = main(["fidelity", "run", "--scale", "2e-6",
                   "--sections", "fig99", "--dir", str(tmp_path)])
        assert rc == 2
        assert "fidelity run:" in capsys.readouterr().err

    def test_check_against_itself_is_clean(self, fidelity_export, capsys):
        root, out = fidelity_export
        rc = main(["fidelity", "check", str(out), "--new", str(out)])
        assert rc == 0
        assert "ok: no fidelity drift" in capsys.readouterr().out

    def test_check_perturbed_gate_claim_returns_1(self, fidelity_export,
                                                  capsys):
        # The seeded no-wec perturbation strips the WEC out of the rerun
        # campaign: headline gate claims leave their bands and the check
        # must gate (exit 1) — proof the fidelity gate actually gates.
        root, out = fidelity_export
        rc = main(["fidelity", "check", str(out), "--perturb", "no-wec",
                   "--engine", "fast", "--no-cache",
                   "--dir", str(root / "perf")])
        assert rc == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_check_missing_baseline_is_usage_error(self, tmp_path, capsys):
        rc = main(["fidelity", "check", str(tmp_path / "absent.json")])
        assert rc == 2
        assert "fidelity check:" in capsys.readouterr().err

    def test_check_bad_threshold_is_usage_error(self, fidelity_export,
                                                capsys):
        root, out = fidelity_export
        rc = main(["fidelity", "check", str(out), "--new", str(out),
                   "--threshold", "lots"])
        assert rc == 2

    def test_report_renders_trajectory(self, fidelity_export, capsys):
        root, out = fidelity_export
        rc = main(["fidelity", "report", "--dir", str(root / "perf")])
        assert rc == 0
        assert "fidelity trajectory" in capsys.readouterr().out

    def test_report_empty_dir_is_usage_error(self, tmp_path, capsys):
        rc = main(["fidelity", "report", "--dir", str(tmp_path)])
        assert rc == 2
        assert "fidelity report:" in capsys.readouterr().err
