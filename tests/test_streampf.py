"""Tests for the stream-detecting prefetcher extension."""

from __future__ import annotations

import pytest

from repro.common.config import (
    CacheConfig,
    MemorySystemConfig,
    SidecarConfig,
    SidecarKind,
    SimParams,
)
from repro.common.errors import ConfigError
from repro.mem.hierarchy import HIT_LATENCY, TUMemSystem
from repro.mem.l2 import SharedL2
from repro.mem.streampf import StreamDetector
from repro.sim.driver import run_simulation
from repro.sta.configs import named_config


class TestStreamDetector:
    def test_two_misses_confirm_ascending(self):
        d = StreamDetector(depth=2)
        assert d.on_demand_miss(100) == []
        targets = d.on_demand_miss(101)
        assert targets == [102, 103]
        assert d.confirmations == 1

    def test_descending_stream(self):
        d = StreamDetector(depth=2)
        d.on_demand_miss(100)
        targets = d.on_demand_miss(99)
        assert targets == [98, 97]

    def test_confirmed_stream_keeps_running(self):
        d = StreamDetector(depth=1)
        d.on_demand_miss(10)
        assert d.on_demand_miss(11) == [12]
        assert d.on_demand_miss(12) == [13]
        assert d.on_demand_miss(13) == [14]

    def test_random_misses_never_confirm(self):
        d = StreamDetector(depth=2)
        for b in (5, 90, 42, 7, 300, 11):
            assert d.on_demand_miss(b) == []
        assert d.confirmations == 0

    def test_prefetch_hit_extends(self):
        d = StreamDetector(depth=2)
        d.on_demand_miss(10)
        d.on_demand_miss(11)      # prefetched 12, 13; expects 12
        targets = d.on_prefetch_hit(12)
        assert targets == [13, 14]

    def test_prefetch_hit_without_candidate_uses_hint(self):
        d = StreamDetector(depth=1)
        assert d.on_prefetch_hit(50) == [51]
        assert d.on_prefetch_hit(50, ascending_hint=False) == [49]

    def test_capacity_lru(self):
        d = StreamDetector(capacity=2, depth=1)
        d.on_demand_miss(10)   # candidates: 11(+1), 9(-1) — fills table
        d.on_demand_miss(50)   # evicts both old candidates
        assert d.on_demand_miss(11) == []  # old candidate gone

    def test_negative_blocks_clamped(self):
        d = StreamDetector(depth=3)
        d.on_demand_miss(1)
        targets = d.on_demand_miss(0)
        assert all(t >= 0 for t in targets)

    def test_validation(self):
        with pytest.raises(ConfigError):
            StreamDetector(capacity=0)
        with pytest.raises(ConfigError):
            StreamDetector(depth=0)

    def test_reset(self):
        d = StreamDetector()
        d.on_demand_miss(1)
        d.reset()
        assert len(d) == 0 and d.allocations == 0


class TestStreamPolicy:
    def make(self):
        l2 = SharedL2(
            MemorySystemConfig(
                l2=CacheConfig(size=32 * 1024, assoc=4, block_size=128,
                               hit_latency=12, name="l2")
            )
        )
        return TUMemSystem(
            0,
            CacheConfig(size=512, assoc=1, block_size=64, name="l1d"),
            CacheConfig(size=1024, assoc=2, block_size=64, name="l1i"),
            SidecarConfig(kind=SidecarKind.STREAM, entries=8),
            l2,
        )

    def test_stream_gets_prefetched_after_confirmation(self):
        m = self.make()
        m.load_correct(100 * 64)   # allocate candidates
        m.load_correct(101 * 64)   # confirm: prefetch 102, 103
        assert m.sidecar.probe(102) is not None
        assert m.sidecar.probe(103) is not None

    def test_stream_rides_after_confirmation(self):
        m = self.make()
        full_memory = 0
        lats = []
        for b in range(200, 220):
            lat = m.load_correct(b * 64)
            lats.append(lat)
            if lat > 180:  # un-prefetched memory miss (201 cycles)
                full_memory += 1
        # Only the detection misses pay the full memory latency; the
        # rest are prefetched (possibly with a lateness charge, which
        # still saves most of the round trip).
        assert full_memory <= 2
        assert sum(lats) / len(lats) < 120

    def test_random_traffic_no_prefetch_storm(self):
        m = self.make()
        for b in (5, 90, 42, 7, 300, 11, 77, 260):
            m.load_correct(b * 64)
        assert m.stats["prefetches"] == 0

    def test_exclusivity_invariant(self):
        m = self.make()
        for b in list(range(100, 110)) + [5, 90, 104, 101]:
            m.load_correct(b * 64)
        l1 = {b for b, _ in m.l1d.resident_blocks()}
        side = {b for b, _ in m.sidecar.items()}
        assert not (l1 & side)

    def test_reset_clears_detector(self):
        m = self.make()
        m.load_correct(100 * 64)
        m.reset()
        assert len(m.stream_detector) == 0


class TestStreamConfig:
    def test_named_config(self):
        cfg = named_config("stream-pf")
        assert cfg.tu.sidecar.kind is SidecarKind.STREAM
        assert not cfg.wrong_exec.any

    def test_end_to_end_beats_baseline_on_streams(self):
        params = SimParams(seed=1, scale=5e-5)
        base = run_simulation("177.mesa", named_config("orig"), params)
        spf = run_simulation("177.mesa", named_config("stream-pf"), params)
        assert spf.relative_speedup_pct_vs(base) > 2.0

    def test_useless_on_pointer_chasing(self):
        params = SimParams(seed=1, scale=5e-5)
        base = run_simulation("181.mcf", named_config("orig"), params)
        spf = run_simulation("181.mcf", named_config("stream-pf"), params)
        assert abs(spf.relative_speedup_pct_vs(base)) < 4.0
