"""Tests for the provenance-attribution layer (repro.obs.attrib).

The contract under test, in order of importance:

1. **Bit-identity** — attaching an ``AttributionCollector`` never
   changes any simulated quantity (cycles, counters, misses), across
   the whole configuration ladder.
2. **Conservation** — every speculative fill's lifetime is accounted
   exactly once (full-simulation complement of the hierarchy-level
   property test).
3. **The paper's story** — on the Figure-11 WEC-vs-plain pair, wrong
   execution shows nonzero useful coverage and the WEC carries less
   wrong-execution pollution than plain wrong execution.
4. **End-to-end metric flow** — SimResult → ledger record →
   ``perf compare`` metric defs → Perfetto counter tracks.
5. **Surface** — the ``repro explain`` CLI (text, json, --vs) and the
   OBS002 lint rule guarding the provenance enum.
"""

from __future__ import annotations

import ast
import json

import pytest

from repro import SimParams, named_config, run_simulation
from repro.cli import main as cli_main
from repro.common.errors import AnalysisError
from repro.obs.attrib import (
    AttributionCollector,
    PROV_NAMES,
    PROVENANCES,
    SPECULATIVE_PROVS,
    attribution_delta,
    explain_report,
    explain_vs_report,
)
from repro.obs.compare import METRICS_BY_NAME, compare_records
from repro.obs.events import ATTRIB_POLLUTE, ATTRIB_USE, CAT_ATTRIB
from repro.obs.export import chrome_trace
from repro.obs.ledger import PerfRecord
from repro.obs.tracer import RingBufferTracer
from repro.lint.rules import check_module

FAST = SimParams(seed=7, scale=5e-5, warmup_invocations=0)

#: The ladder subset covering every sidecar policy plus plain wrong
#: execution and the no-speculation baseline.
LADDER = ["orig", "wth-wp", "wth-wp-vc", "wth-wp-wec", "nlp", "stream-pf"]


def attributed_run(config="wth-wp-wec", params=FAST, **kwargs):
    attrib = AttributionCollector()
    result = run_simulation("181.mcf", named_config(config), params,
                            attrib=attrib, **kwargs)
    return result, attrib


# ---------------------------------------------------------------------------
# bit-identity and conservation
# ---------------------------------------------------------------------------


class TestInvariants:
    @pytest.mark.parametrize("config", LADDER)
    def test_attributed_runs_are_bit_identical(self, config):
        attributed, _ = attributed_run(config)
        plain = run_simulation("181.mcf", named_config(config), FAST)
        assert attributed.total_cycles == plain.total_cycles
        assert attributed.effective_misses == plain.effective_misses
        assert attributed.counters == plain.counters
        assert attributed.sim_metrics().keys() >= plain.sim_metrics().keys()

    @pytest.mark.parametrize("config", LADDER)
    def test_lifetime_conservation(self, config):
        result, _ = attributed_run(config)
        per_source = result.attribution["per_source"]
        for prov in SPECULATIVE_PROVS:
            src = per_source[PROV_NAMES[prov]]
            assert src["fills"] == (
                src["useful"] + src["late"] + src["unused"]
                + src["polluting"] + src["open"]
            ), (config, PROV_NAMES[prov], src)

    def test_disabled_collector_binds_nothing(self):
        class Disabled(AttributionCollector):
            enabled = False

        result = run_simulation("181.mcf", named_config("wth-wp-wec"),
                                FAST, attrib=Disabled())
        # The driver still asks for a summary, but no hook ever fired.
        assert result.attribution["totals"]["fills"] == 0

    def test_warmup_resets_measurement(self):
        warm = SimParams(seed=7, scale=5e-5, warmup_invocations=2)
        result, attrib = attributed_run(params=warm)
        totals = result.attribution["totals"]
        cold_totals = attributed_run()[0].attribution["totals"]
        assert 0 < totals["fills"] < cold_totals["fills"]


# ---------------------------------------------------------------------------
# the paper's story (Figure 11 pair)
# ---------------------------------------------------------------------------


class TestPaperStory:
    def test_wec_vs_plain_wrong_execution(self):
        wec, _ = attributed_run("wth-wp-wec")
        plain, _ = attributed_run("wth-wp")
        wec_m = wec.attribution["metrics"]
        plain_m = plain.attribution["metrics"]
        # Wrong execution prefetches usefully in both configurations...
        assert wec_m["wrong_coverage"] > 0
        assert plain_m["wrong_coverage"] > 0
        # ...but only the WEC absorbs the pollution (§3.2.1): under
        # plain wrong execution the wrong fills displace the L1's
        # demand working set and get charged for the re-misses.
        assert wec_m["wrong_polluting_mpki"] < plain_m["wrong_polluting_mpki"]
        report = explain_vs_report(wec, plain)
        assert "useful coverage" in report
        assert "absorbs the pollution" in report

    def test_orig_has_no_speculative_fills(self):
        result, _ = attributed_run("orig")
        per_source = result.attribution["per_source"]
        for prov in SPECULATIVE_PROVS:
            assert per_source[PROV_NAMES[prov]]["fills"] == 0
        assert result.attribution["totals"]["demand_fills"] > 0

    def test_wrong_path_sites_carry_branch_pcs(self):
        result, _ = attributed_run("wth-wp-wec")
        sites = result.attribution["sites"]
        assert sites, "wrong-path fills must be attributed to branch sites"
        assert all(s["wrong_fills"] > 0 for s in sites)
        assert any(s["pc"] != 0 for s in sites)
        regions = result.attribution["regions"]
        assert sum(r["demand_fills"] for r in regions) == (
            result.attribution["totals"]["demand_fills"]
        )


# ---------------------------------------------------------------------------
# end-to-end metric flow: SimResult -> ledger -> compare -> Perfetto
# ---------------------------------------------------------------------------


class TestMetricFlow:
    def test_sim_metrics_gain_attribution_headlines(self):
        result, _ = attributed_run()
        metrics = result.sim_metrics()
        for name in ("wrong_coverage", "wrong_accuracy",
                     "prefetch_accuracy", "polluting_mpki"):
            assert name in metrics
            assert name in METRICS_BY_NAME
            assert METRICS_BY_NAME[name].deterministic
        bare = run_simulation("181.mcf", named_config("wth-wp-wec"), FAST)
        assert "wrong_coverage" not in bare.sim_metrics()

    def test_ledger_to_compare_flow(self):
        wec, _ = attributed_run("wth-wp-wec")
        plain, _ = attributed_run("wth-wp")
        # Same (benchmark, config, seed, scale) key on both sides, as a
        # before/after comparison of one config across code changes has.
        ref = PerfRecord.from_result(plain, wall_s=1.0)
        new = PerfRecord.from_result(wec, wall_s=1.0)
        new.config = plain.config
        report = compare_records([ref], [new])
        names = {m for g in report.groups for m in g.metrics}
        assert "polluting_mpki" in names
        group = report.groups[0]
        mc = group.metrics["polluting_mpki"]
        assert mc.significant and not mc.worsened

    def test_serialization_round_trip(self):
        result, _ = attributed_run()
        clone = type(result).from_dict(json.loads(result.to_json()))
        assert clone.attribution == result.attribution

    def test_attrib_events_and_counter_tracks(self):
        tracer = RingBufferTracer(categories=(CAT_ATTRIB,))
        attrib = AttributionCollector(tracer=tracer)
        run_simulation("181.mcf", named_config("wth-wp-wec"), FAST,
                       tracer=tracer, attrib=attrib)
        events = tracer.events()
        kinds = {ev.kind for ev in events}
        assert ATTRIB_USE in kinds and ATTRIB_POLLUTE in kinds
        doc = chrome_trace(events, attrib_series=attrib.series())
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        tracks = {e["name"] for e in counters}
        assert tracks == {"speculative fills", "useful spec uses",
                          "pollution misses"}
        # The series counts wrong + prefetch fills (victim demotions are
        # recycled L1 state, not new speculative traffic).
        from repro.obs.attrib import PREFETCH_PROVS, WRONG_PROVS

        series = attrib.series()
        assert sum(series["spec_fills"]) == (
            sum(attrib.summary()["per_source"][PROV_NAMES[p]]["fills"]
                for p in (*WRONG_PROVS, *PREFETCH_PROVS))
        )


# ---------------------------------------------------------------------------
# reports and CLI
# ---------------------------------------------------------------------------


class TestSurface:
    def test_explain_report_renders(self):
        result, _ = attributed_run()
        text = explain_report(result, top=3)
        assert "per-source attribution" in text or "source" in text
        for prov in PROVENANCES:
            if result.attribution["per_source"][PROV_NAMES[prov]]["fills"]:
                assert PROV_NAMES[prov] in text

    def test_report_requires_attribution(self):
        bare = run_simulation("181.mcf", named_config("wth-wp-wec"), FAST)
        with pytest.raises(AnalysisError):
            explain_report(bare)

    def test_attribution_delta_is_antisymmetric(self):
        a, _ = attributed_run("wth-wp-wec")
        b, _ = attributed_run("wth-wp")
        d_ab = attribution_delta(a.attribution, b.attribution)
        d_ba = attribution_delta(b.attribution, a.attribution)
        assert d_ab["demand_misses_delta"] == -d_ba["demand_misses_delta"]
        for name, row in d_ab["per_source"].items():
            other = d_ba["per_source"][name]
            for key in ("fills_delta", "covered_delta", "pollution_delta"):
                assert row[key] == -other[key]

    def test_explain_subcommand(self, capsys):
        rc = cli_main([
            "explain", "181.mcf", "wth-wp-wec",
            "--scale", "5e-5", "--seed", "7", "--top", "3",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "wrong-path" in out and "timeliness" in out

    def test_explain_vs_json(self, capsys):
        rc = cli_main([
            "explain", "181.mcf", "wth-wp-wec", "--vs", "wth-wp",
            "--scale", "5e-5", "--seed", "7", "--format", "json",
        ])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["config"] == "wth-wp-wec"
        assert doc["vs"]["config"] == "wth-wp"
        assert doc["attribution"]["metrics"]["wrong_coverage"] > 0

    def test_explain_rejects_unknown_config(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["explain", "181.mcf", "not-a-config"])


# ---------------------------------------------------------------------------
# OBS002 lint rule
# ---------------------------------------------------------------------------


class TestObs002:
    def _findings(self, src: str):
        return [
            f for f in check_module(
                ast.parse(src), "repro.mem.hierarchy", "x.py"
            )
            if f.rule == "OBS002"
        ]

    def test_flags_literal_provenance(self):
        assert self._findings("att.set_wrong_context(1, pc=5)\n")
        assert self._findings("att.on_prefetch_fill(0, b, lat, 3)\n")
        assert self._findings("att.on_prefetch_fill(0, b, lat, prov=4)\n")

    def test_accepts_named_constants(self):
        src = (
            "att.set_wrong_context(PROV_WRONG_PATH, pc=5)\n"
            "att.on_prefetch_fill(0, b, lat, PROV_NLP)\n"
            "att.on_prefetch_fill(0, b, lat, prov=PROV_STREAM)\n"
        )
        assert not self._findings(src)

    def test_repo_sources_are_clean(self):
        from repro.lint.engine import lint_paths

        report = lint_paths(["src"], rules=["OBS002"])
        assert not report.findings
