"""Tests for the six SPEC2000-like benchmark models."""

from __future__ import annotations

import pytest

from repro.common.errors import WorkloadError
from repro.common.rng import StreamFactory
from repro.workloads.benchmarks import (
    BENCHMARK_INFO,
    BENCHMARK_NAMES,
    N_INVOCATIONS,
    benchmark_infos,
    build_benchmark,
)
from repro.workloads.program import ParallelRegionSpec, SequentialRegionSpec
from repro.workloads.tracegen import TraceGenerator

SCALE = 5e-5  # small builds for fast tests


class TestRegistry:
    def test_six_benchmarks(self):
        assert len(BENCHMARK_NAMES) == 6
        assert set(BENCHMARK_NAMES) == {
            "175.vpr", "164.gzip", "181.mcf", "197.parser",
            "183.equake", "177.mesa",
        }

    def test_short_names_resolve(self):
        assert build_benchmark("mcf", SCALE).name == "181.mcf"
        assert build_benchmark("vpr", SCALE).name == "175.vpr"

    def test_unknown_name(self):
        with pytest.raises(WorkloadError):
            build_benchmark("482.sphinx3", SCALE)

    def test_bad_scale(self):
        with pytest.raises(WorkloadError):
            build_benchmark("mcf", 0.0)
        with pytest.raises(WorkloadError):
            build_benchmark("mcf", 2.0)

    def test_infos_order_and_table2_values(self):
        infos = benchmark_infos()
        assert [i.name for i in infos] == list(BENCHMARK_NAMES)
        mcf = BENCHMARK_INFO["181.mcf"]
        assert mcf.whole_minstr == 601.6
        assert mcf.targeted_minstr == 217.3
        assert mcf.input_set == "MinneSPEC large"
        assert mcf.fraction_parallelized == pytest.approx(0.361, abs=0.001)

    def test_table1_transformations_present(self):
        for info in benchmark_infos():
            assert len(info.transformations) >= 1


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
class TestEachBenchmark:
    def test_builds_and_validates(self, name):
        prog = build_benchmark(name, SCALE)
        assert prog.n_invocations == N_INVOCATIONS
        assert prog.parallel_regions, "every benchmark has a parallel loop"
        assert prog.sequential_regions, "every benchmark has sequential glue"

    def test_traces_generate(self, name):
        prog = build_benchmark(name, SCALE)
        tg = TraceGenerator(StreamFactory(3))
        for region in prog.body:
            if isinstance(region, ParallelRegionSpec):
                t = tg.iteration_trace(region, 0)
            else:
                t = tg.chunk_trace(region, 0)
            assert t.n_instr > 0
            assert t.n_loads > 0

    def test_wrong_execution_configured(self, name):
        prog = build_benchmark(name, SCALE)
        for region in prog.parallel_regions:
            assert region.pollution_pattern is not None
            assert region.wrong_exec.wp_max_loads > 0

    def test_instruction_budget_tracks_table2(self, name):
        """Dynamic instructions per run should be within 2x of the
        Table-2 budget at the build scale (CFG walks are stochastic)."""
        prog = build_benchmark(name, 2e-4)
        tg = TraceGenerator(StreamFactory(3))
        total = 0.0
        for region in prog.body:
            per = tg.estimate_iteration_cost(region, n_samples=16)
            if isinstance(region, ParallelRegionSpec):
                total += per * region.iters_per_invocation * prog.n_invocations
            else:
                total += per * region.chunks_per_invocation * prog.n_invocations
        expected = prog.info.whole_minstr * 1e6 * 2e-4
        assert 0.5 * expected < total < 2.0 * expected

    def test_parallel_fraction_tracks_table2(self, name):
        prog = build_benchmark(name, 2e-4)
        tg = TraceGenerator(StreamFactory(3))
        par = seq = 0.0
        for region in prog.body:
            per = tg.estimate_iteration_cost(region, n_samples=16)
            if isinstance(region, ParallelRegionSpec):
                par += per * region.iters_per_invocation
            else:
                seq += per * region.chunks_per_invocation
        measured = par / (par + seq)
        expected = prog.info.fraction_parallelized
        assert abs(measured - expected) < 0.15

    def test_footprints_disjoint(self, name):
        """Data patterns within one benchmark must not overlap each other.

        Pollution patterns are exempt: some deliberately alias the
        benchmark's own structures (off-path loads touch the same data).
        """
        prog = build_benchmark(name, SCALE)
        spans = []
        for region in prog.body:
            for pat in region.patterns.values():
                if "pollute" in pat.name:
                    continue
                spans.append((pat.base, pat.base + pat.size, pat.name))
        spans.sort()
        for (lo1, hi1, n1), (lo2, hi2, n2) in zip(spans, spans[1:]):
            if n1 == n2:
                continue  # shared pattern across regions
            assert hi1 <= lo2, f"{n1} overlaps {n2}"


class TestCharacterDifferences:
    def test_mcf_is_chase_heavy(self):
        from repro.workloads.patterns import PointerChasePattern

        prog = build_benchmark("181.mcf", SCALE)
        kinds = {
            type(p).__name__
            for r in prog.body
            for p in r.patterns.values()
        }
        assert "PointerChasePattern" in kinds

    def test_vpr_has_highest_coupling(self):
        couplings = {}
        for name in BENCHMARK_NAMES:
            prog = build_benchmark(name, SCALE)
            couplings[name] = max(r.dep_coupling for r in prog.parallel_regions)
        assert couplings["175.vpr"] == max(couplings.values())

    def test_gzip_has_lowest_coupling(self):
        prog = build_benchmark("164.gzip", SCALE)
        assert all(r.dep_coupling <= 0.05 for r in prog.parallel_regions)

    def test_fp_codes_use_fp_instructions(self):
        from repro.isa.instructions import InstrClass
        from repro.common.rng import StreamFactory

        for name in ("183.equake", "177.mesa"):
            prog = build_benchmark(name, SCALE)
            tg = TraceGenerator(StreamFactory(1))
            region = prog.parallel_regions[0]
            t = tg.iteration_trace(region, 0)
            assert t.mix.count(InstrClass.FPALU) > 0
