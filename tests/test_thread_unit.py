"""Tests for the thread-unit replay engine and wrong execution."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.common.config import (
    CacheConfig,
    MachineConfig,
    MemorySystemConfig,
    SidecarConfig,
    SidecarKind,
    SimParams,
    ThreadUnitConfig,
    WrongExecutionConfig,
)
from repro.common.rng import StreamFactory
from repro.core.thread_unit import SEQ_SPLIT, ThreadUnit
from repro.isa.cfg import BlockSpec, BranchSpec, IterationCFG, MemSlot
from repro.mem.l2 import SharedL2
from repro.workloads.patterns import RandomPattern, SequentialPattern
from repro.workloads.program import (
    ParallelRegionSpec,
    SequentialRegionSpec,
    WrongExecProfile,
)
from repro.workloads.tracegen import TraceGenerator


def make_region(noise=0.9):
    cfg = IterationCFG(
        entry="a",
        blocks=[
            BlockSpec(
                "a",
                24,
                mem_slots=(MemSlot("data"), MemSlot("data"),
                           MemSlot("out", is_store=True, is_target_store=True)),
                branch=BranchSpec(0.5, "b", "b", noise=noise),
            ),
            BlockSpec("b", 8, mem_slots=(MemSlot("data"),)),
        ],
    )
    return ParallelRegionSpec(
        name="tu.region",
        cfg=cfg,
        patterns={
            "data": SequentialPattern("data", 0x10000, 64 * 1024, stride=64,
                                      per_iter=3, stagger=False),
            "out": SequentialPattern("out", 0x200000, 8 * 1024, stride=8,
                                     per_iter=1, stagger=False),
            "poll": RandomPattern("poll", 0x300000, 64 * 1024, stagger=False),
        },
        iters_per_invocation=8,
        pollution_pattern="poll",
        wrong_exec=WrongExecProfile(wp_mean_loads=4.0, wp_max_loads=8,
                                    p_convergent=0.5, wth_fraction=1.0,
                                    wth_max_iters=1),
    )


def make_seq_region():
    cfg = IterationCFG(
        entry="a",
        blocks=[
            BlockSpec("a", 24, mem_slots=(
                MemSlot("data"), MemSlot("out", is_store=True))),
        ],
    )
    return SequentialRegionSpec(
        name="tu.seq",
        cfg=cfg,
        patterns={
            "data": SequentialPattern("data", 0x10000, 64 * 1024, stride=64,
                                      per_iter=1, stagger=False),
            "out": SequentialPattern("out", 0x400000, 8 * 1024, stride=8,
                                     per_iter=1, stagger=False),
        },
        chunks_per_invocation=4,
    )


def make_tu(wrong_path=False, wrong_thread=False, sidecar=SidecarKind.NONE,
            n_tus=2):
    cfg = MachineConfig(
        name="t",
        n_thread_units=n_tus,
        tu=ThreadUnitConfig(
            issue_width=4,
            rob_size=32,
            lsq_size=32,
            l1d=CacheConfig(size=1024, assoc=1, block_size=64, name="l1d"),
            l1i=CacheConfig(size=2048, assoc=2, block_size=64, name="l1i"),
            sidecar=SidecarConfig(kind=sidecar, entries=8),
        ),
        wrong_exec=WrongExecutionConfig(wrong_path=wrong_path,
                                        wrong_thread=wrong_thread),
    )
    l2 = SharedL2(cfg.mem)
    return ThreadUnit(0, cfg, l2, SimParams(seed=5))


class TestIterationExecution:
    def test_stores_committed_at_writeback(self):
        tu = make_tu()
        region = make_region()
        tg = TraceGenerator(StreamFactory(5))
        trace = tg.iteration_trace(region, 0)
        tu.execute_iteration(region, 0, trace, tg)
        # Stores went through the speculative buffer and reached the L1.
        assert tu.mem.stats["stores"] == trace.n_stores
        assert tu.membuf.occupancy == 0  # drained

    def test_no_wrong_loads_when_disabled(self):
        tu = make_tu(wrong_path=False)
        region = make_region()
        tg = TraceGenerator(StreamFactory(5))
        for i in range(8):
            tu.execute_iteration(region, i, tg.iteration_trace(region, i), tg)
        assert tu.mem.stats["wrong_loads"] == 0

    def test_wrong_loads_when_enabled(self):
        tu = make_tu(wrong_path=True)
        region = make_region()
        tg = TraceGenerator(StreamFactory(5))
        for i in range(16):
            tu.execute_iteration(region, i, tg.iteration_trace(region, i), tg)
        assert tu.mem.stats["wrong_loads"] > 0
        assert tu.stats["wrong_path_loads"] == tu.mem.stats["wrong_loads"]

    def test_timing_fields_populated(self):
        tu = make_tu()
        region = make_region()
        tg = TraceGenerator(StreamFactory(5))
        trace = tg.iteration_trace(region, 0)
        t = tu.execute_iteration(region, 0, trace, tg)
        assert t.total > 0
        assert t.base_cycles > 0

    def test_instructions_counted(self):
        tu = make_tu()
        region = make_region()
        tg = TraceGenerator(StreamFactory(5))
        trace = tg.iteration_trace(region, 0)
        tu.execute_iteration(region, 0, trace, tg)
        assert tu.stats["instructions"] == trace.n_instr
        assert tu.stats["iterations"] == 1

    def test_upstream_targets_flow_to_membuf(self):
        tu = make_tu()
        region = make_region()
        tg = TraceGenerator(StreamFactory(5))
        trace = tg.iteration_trace(region, 1)
        tu.execute_iteration(region, 1, trace, tg, upstream_targets=[0x10000])
        assert tu.membuf.stats["targets_received"] >= 1


class TestSequentialExecution:
    def test_stores_broadcast_on_bus(self):
        from repro.mem.coherence import UpdateBus

        tu = make_tu()
        region = make_seq_region()
        tg = TraceGenerator(StreamFactory(5))
        bus = UpdateBus([tu.mem])
        trace = tg.chunk_trace(region, 0)
        tu.execute_sequential_chunk(region, 0, trace, tg, update_bus=bus)
        assert bus.stats["store_broadcasts"] == trace.n_stores
        assert tu.stats["chunks"] == 1

    def test_seq_split_is_pure_computation(self):
        assert SEQ_SPLIT.computation == 1.0
        assert SEQ_SPLIT.continuation == 0.0


class TestWrongFillContention:
    def test_wec_pays_no_port_charge(self):
        tu = make_tu(wrong_path=True, sidecar=SidecarKind.WEC)
        assert tu._wrong_fill_charge == 0.0

    def test_plain_pays_port_charge(self):
        tu = make_tu(wrong_path=True, sidecar=SidecarKind.NONE)
        assert tu._wrong_fill_charge > 0.0

    def test_charge_raises_stall(self):
        """Identical replays, WEC vs plain: the plain TU's iteration must
        carry extra stall for its wrong fills."""
        region = make_region()
        totals = {}
        for kind in (SidecarKind.WEC, SidecarKind.NONE):
            tu = make_tu(wrong_path=True, sidecar=kind)
            tg = TraceGenerator(StreamFactory(5))
            stall = 0.0
            for i in range(20):
                t = tu.execute_iteration(region, i, tg.iteration_trace(region, i), tg)
                stall += t.mem_stall
            totals[kind] = stall
        # Plain wrong fills hit the same pool of stalls plus contention;
        # WEC's hits can only reduce stalls. The relation must hold.
        assert totals[SidecarKind.NONE] > totals[SidecarKind.WEC]


class TestWrongThread:
    def test_runs_future_iteration_loads(self):
        tu = make_tu(wrong_thread=True)
        region = make_region()
        tg = TraceGenerator(StreamFactory(5))
        n = tu.run_wrong_thread(region, 100, tg)
        assert n > 0
        assert tu.mem.stats["wrong_loads"] == n
        assert tu.stats["wrong_threads"] == 1

    def test_membuf_aborted(self):
        tu = make_tu(wrong_thread=True)
        region = make_region()
        tg = TraceGenerator(StreamFactory(5))
        tu.membuf.buffer_store(0x123)
        tu.run_wrong_thread(region, 100, tg)
        assert tu.membuf.occupancy == 0
        assert tu.membuf.stats["aborts"] == 1


class TestForkCostAndReset:
    def test_fork_cost(self):
        tu = make_tu()
        # fork_delay 4 + 2 cycles per forwarded value
        assert tu.fork_cost(3) == 4 + 2 * 3

    def test_reset(self):
        tu = make_tu(wrong_path=True)
        region = make_region()
        tg = TraceGenerator(StreamFactory(5))
        tu.execute_iteration(region, 0, tg.iteration_trace(region, 0), tg)
        tu.reset()
        assert tu.stats["instructions"] == 0
        assert tu.mem.l1d.occupancy() == 0
