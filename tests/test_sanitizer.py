"""The runtime half of ``repro lint``: the simulation sanitizer.

Three claims, per the design contract in ``repro.lint.sanitize``:

(a) seeded runs of the wrong-execution configurations pass every
    invariant check cleanly, with the sanitizer provably live;
(b) injected violations — a wrong thread writing back, a WEC fill
    landing in the L1, a backwards ring hop, a non-monotone clock —
    trip a structured :class:`SanitizerError` naming check/TU/cycle;
(c) sanitized runs are bit-identical to unsanitized ones.
"""

from __future__ import annotations

import pytest

from repro.common.config import SidecarConfig, SidecarKind, SimParams
from repro.core.thread_unit import ThreadUnit
from repro.lint.sanitize import (
    Sanitizer,
    SanitizerError,
    maybe_sanitizer,
    sanitize_enabled,
)
from repro.mem.cache import DIRTY
from repro.mem.hierarchy import TUMemSystem
from repro.sim.driver import run_simulation
from repro.sta.configs import named_config

PARAMS = SimParams(seed=11, scale=2e-5, warmup_invocations=0)


def run(config_name: str, sanitizer=None):
    cfg = named_config(config_name, n_tus=4)
    return run_simulation("181.mcf", cfg, PARAMS, sanitizer=sanitizer)


def sanitized_mem(kind: SidecarKind, tiny_l1, l1i_cfg, l2, sabotage=None):
    """A TUMemSystem with checks attached, optionally over a broken policy.

    ``sabotage`` maps policy-slot names to buggy replacements; they are
    installed *before* the sanitizer wraps the slots, exactly as a buggy
    implementation inside the hierarchy would sit beneath the checks.
    """
    san = Sanitizer()
    mem = TUMemSystem(
        0, tiny_l1, l1i_cfg, SidecarConfig(kind=kind, entries=4), l2
    )
    for name, fn in (sabotage or {}).items():
        setattr(mem, name, fn)
    san.attach_memory_checks(mem)
    return san, mem


# ---------------------------------------------------------------------------
# (a) seeded runs pass clean
# ---------------------------------------------------------------------------


class TestCleanRuns:
    @pytest.mark.parametrize("name", ["wth-wp-wec", "wth-wp-vc"])
    def test_wrong_execution_configs_pass_with_live_sanitizer(self, name):
        san = Sanitizer()
        res = run(name, sanitizer=san)
        # Live, and actually exercised on wrong-execution traffic.
        assert san.n_checks > 0
        assert res.wrong_loads > 0

    @pytest.mark.parametrize("name", ["orig", "nlp"])
    def test_baseline_configs_pass(self, name):
        san = Sanitizer()
        run(name, sanitizer=san)
        assert san.n_checks > 0

    def test_env_var_enables_sanitizer(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize_enabled()
        assert isinstance(maybe_sanitizer(), Sanitizer)
        # The driver auto-creates one from the env; the run must still pass.
        run("wth-wp-wec")

    def test_env_var_off_means_no_sanitizer(self, monkeypatch):
        for off in ("", "0", "false", "no"):
            monkeypatch.setenv("REPRO_SANITIZE", off)
            assert not sanitize_enabled()
            assert maybe_sanitizer() is None

    def test_explicit_instance_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        san = Sanitizer()
        assert maybe_sanitizer(san) is san


# ---------------------------------------------------------------------------
# (b) injected violations trip SanitizerError
# ---------------------------------------------------------------------------


class TestThreadLifecycleChecks:
    def test_wrong_thread_writeback_via_retained_buffer(self):
        san = Sanitizer()
        san.enter_wrong(0, 5)
        with pytest.raises(SanitizerError) as ei:
            san.exit_wrong(0, membuf_occupancy=3)
        assert ei.value.check == "wrong_thread_writeback"
        assert ei.value.tu == 0
        assert "sanitizer:" in str(ei.value)

    def test_wrong_thread_direct_writeback(self):
        san = Sanitizer()
        san.enter_wrong(1, 9)
        with pytest.raises(SanitizerError, match="wrong_thread_writeback"):
            san.check_writeback(1)

    def test_wrong_thread_may_not_execute_or_fork(self):
        san = Sanitizer()
        san.enter_wrong(2, 7)
        with pytest.raises(SanitizerError, match="wrong_thread_execute"):
            san.check_execute(2)
        with pytest.raises(SanitizerError, match="wrong_thread_fork"):
            san.check_fork(2)
        # Other TUs stay unaffected.
        san.check_execute(0)
        san.check_fork(3)

    def test_wrong_thread_reentry(self):
        san = Sanitizer()
        san.enter_wrong(0, 5)
        with pytest.raises(SanitizerError, match="wrong_thread_reentry"):
            san.enter_wrong(0, 9)

    def test_clean_lifecycle_passes(self):
        san = Sanitizer()
        san.enter_wrong(0, 5)
        san.exit_wrong(0, membuf_occupancy=0)
        san.check_execute(0)
        assert san.n_checks == 3


class TestRingAndClockChecks:
    def test_ring_is_unidirectional(self):
        san = Sanitizer()
        san.check_ring(0, 1, 4)
        san.check_ring(3, 0, 4)  # wraparound is the one legal "backwards" hop
        with pytest.raises(SanitizerError) as ei:
            san.check_ring(0, 2, 4)
        assert ei.value.check == "ring_unidirectional"
        with pytest.raises(SanitizerError, match="ring_unidirectional"):
            san.check_ring(2, 1, 4)

    def test_single_tu_has_no_ring(self):
        Sanitizer().check_ring(0, 0, 1)

    def test_iteration_span_must_be_positive(self):
        san = Sanitizer()
        with pytest.raises(SanitizerError, match="iter_negative_span"):
            san.check_iter(0, start=100.0, end=90.0)

    def test_tu_cycles_are_monotone(self):
        san = Sanitizer()
        san.check_iter(0, 0.0, 100.0)
        san.check_iter(0, 100.0, 180.0)  # back-to-back retire is fine
        san.check_iter(1, 10.0, 50.0)  # other TU has its own stream
        with pytest.raises(SanitizerError) as ei:
            san.check_iter(0, 150.0, 200.0)
        assert ei.value.check == "tu_cycle_monotonic"
        assert ei.value.cycle == 150.0

    def test_region_clock_only_moves_forward(self):
        san = Sanitizer()
        san.check_clock(500.0)
        san.check_clock(500.0)  # standing still is allowed
        with pytest.raises(SanitizerError, match="clock_monotonic"):
            san.check_clock(499.0)

    def test_float_rounding_noise_is_tolerated(self):
        san = Sanitizer()
        big = 1e12
        san.check_clock(big)
        san.check_clock(big - big * 1e-12)  # within relative tolerance
        san.check_iter(0, 0.0, big)
        san.check_iter(0, big - big * 1e-12, big * 2)


class TestMemorySystemChecks:
    ADDR = 0x4000

    def test_wrong_thread_store_is_caught(self, tiny_l1, l1i_cfg, l2):
        san, mem = sanitized_mem(SidecarKind.WEC, tiny_l1, l1i_cfg, l2)
        san.enter_wrong(0, 5)
        with pytest.raises(SanitizerError) as ei:
            mem.store_correct(self.ADDR)
        assert ei.value.check == "wrong_thread_store"

    def test_clean_accesses_pass_and_count(self, tiny_l1, l1i_cfg, l2):
        san, mem = sanitized_mem(SidecarKind.WEC, tiny_l1, l1i_cfg, l2)
        mem.load_correct(self.ADDR)
        mem.store_correct(self.ADDR)
        mem.load_wrong(self.ADDR + 0x1000)
        assert san.n_checks == 3

    def test_wec_wrong_fill_into_l1_is_caught(self, tiny_l1, l1i_cfg, l2):
        # A buggy wrong-load policy that installs into the L1D — exactly
        # the pollution the WEC exists to prevent.
        def buggy_load_wrong(addr):
            mem.l1d.insert(addr >> mem.l1d.block_bits)
            return 1.0

        san, mem = sanitized_mem(
            SidecarKind.WEC, tiny_l1, l1i_cfg, l2,
            sabotage={"load_wrong": lambda addr: buggy_load_wrong(addr)},
        )
        with pytest.raises(SanitizerError) as ei:
            mem.load_wrong(self.ADDR)
        assert ei.value.check == "wec_wrong_fill_l1"

    def test_wrong_load_creating_dirty_state_is_caught(
        self, tiny_l1, l1i_cfg, l2
    ):
        # A buggy policy marking a wrong-execution fill dirty would let
        # speculation write architectural state.
        def buggy_load_wrong(addr):
            mem.sidecar.insert(addr >> mem.l1d.block_bits, DIRTY)
            return 1.0

        san, mem = sanitized_mem(
            SidecarKind.WEC, tiny_l1, l1i_cfg, l2,
            sabotage={"load_wrong": lambda addr: buggy_load_wrong(addr)},
        )
        with pytest.raises(SanitizerError) as ei:
            mem.load_wrong(self.ADDR)
        assert ei.value.check == "wrong_load_writes_state"

    def test_l1_sidecar_exclusivity_is_caught(self, tiny_l1, l1i_cfg, l2):
        # A buggy correct-load filling both structures at once.
        def buggy_load_correct(addr):
            block = addr >> mem.l1d.block_bits
            mem.l1d.insert(block)
            mem.sidecar.insert(block)
            return 1.0

        san, mem = sanitized_mem(
            SidecarKind.VICTIM, tiny_l1, l1i_cfg, l2,
            sabotage={"load_correct": lambda addr: buggy_load_correct(addr)},
        )
        with pytest.raises(SanitizerError) as ei:
            mem.load_correct(self.ADDR)
        assert ei.value.check == "l1_sidecar_exclusive"


class TestEndToEndInjection:
    def test_wrong_thread_writeback_trips_in_full_run(self, monkeypatch):
        """The ISSUE's (b): an injected write-back from a wrong thread."""
        original = ThreadUnit.run_wrong_thread

        def evil(self, region, start_iter, tracegen):
            n = original(self, region, start_iter, tracegen)
            # The wrong thread is done and aborted — now make it store
            # through the correct-path port anyway.
            if self._san is not None:
                self._san.enter_wrong(self.tu_id, start_iter)
                self.mem.store_correct(0x80)
            return n

        monkeypatch.setattr(ThreadUnit, "run_wrong_thread", evil)
        with pytest.raises(SanitizerError) as ei:
            run("wth-wp-wec", sanitizer=Sanitizer())
        assert ei.value.check == "wrong_thread_store"
        assert "cycle" in str(ei.value)


# ---------------------------------------------------------------------------
# (c) sanitized runs are bit-identical
# ---------------------------------------------------------------------------


class TestBitIdentity:
    @pytest.mark.parametrize("name", ["wth-wp-wec", "wth-wp-vc", "orig"])
    def test_sanitized_equals_unsanitized(self, name):
        plain = run(name)
        san = Sanitizer()
        checked = run(name, sanitizer=san)
        assert san.n_checks > 0
        assert checked.to_dict() == plain.to_dict()
