"""Tests for the speculative memory buffer (§2.2, §4.1)."""

from __future__ import annotations

import pytest

from repro.common.errors import SimulationError
from repro.core.membuffer import SpeculativeMemBuffer


class TestBuffering:
    def test_buffer_and_writeback(self):
        b = SpeculativeMemBuffer(8)
        assert b.buffer_store(0x100) is True
        assert b.buffer_store(0x200, is_target=True) is True
        committed = b.writeback()
        assert dict(committed) == {0x100: False, 0x200: True}
        assert b.occupancy == 0

    def test_writeback_preserves_order(self):
        b = SpeculativeMemBuffer(8)
        for a in (0x300, 0x100, 0x200):
            b.buffer_store(a)
        assert [a for a, _ in b.writeback()] == [0x300, 0x100, 0x200]

    def test_rewrite_same_address_keeps_one_entry(self):
        b = SpeculativeMemBuffer(8)
        b.buffer_store(0x100)
        b.buffer_store(0x100, is_target=True)
        assert b.occupancy == 1
        assert dict(b.writeback())[0x100] is True  # target flag sticky

    def test_overflow(self):
        b = SpeculativeMemBuffer(2)
        assert b.buffer_store(0x0)
        assert b.buffer_store(0x8)
        assert b.buffer_store(0x10) is False
        assert b.stats["overflows"] == 1
        # Re-writing an existing entry is fine even when full.
        assert b.buffer_store(0x0) is True

    def test_capacity_validation(self):
        with pytest.raises(SimulationError):
            SpeculativeMemBuffer(0)


class TestTargetStores:
    def test_target_addresses(self):
        b = SpeculativeMemBuffer(8)
        b.buffer_store(0x100, is_target=True)
        b.buffer_store(0x200, is_target=False)
        assert b.target_addresses() == [0x100]

    def test_dependence_check_stalls_until_arrival(self):
        b = SpeculativeMemBuffer(8)
        b.receive_targets([0x500])
        assert b.check_load(0x500) is True       # data not yet arrived
        assert b.stats["dependence_hits"] == 1
        assert b.stats["dependence_stalls"] == 1
        b.data_arrived(0x500)
        assert b.check_load(0x500) is False
        assert b.stats["dependence_hits"] == 2

    def test_data_arrived_ignores_unknown_address(self):
        b = SpeculativeMemBuffer(8)
        b.data_arrived(0x900)  # not an upstream target: no effect
        assert b.check_load(0x900) is False

    def test_local_forwarding(self):
        b = SpeculativeMemBuffer(8)
        b.buffer_store(0x700)
        assert b.check_load(0x700) is False
        assert b.stats["local_forwards"] == 1

    def test_independent_load_no_stall(self):
        b = SpeculativeMemBuffer(8)
        b.receive_targets([0x500])
        assert b.check_load(0x999) is False


class TestAbort:
    def test_abort_discards_everything(self):
        b = SpeculativeMemBuffer(8)
        b.buffer_store(0x100)
        b.buffer_store(0x200, is_target=True)
        b.receive_targets([0x300])
        n = b.abort()
        assert n == 2
        assert b.occupancy == 0
        assert b.writeback() == []          # nothing reaches memory
        assert b.check_load(0x300) is False  # upstream targets gone
        assert b.stats["stores_squashed"] == 2

    def test_wrong_thread_semantics(self):
        """A wrong thread's stores must never reach the memory system."""
        b = SpeculativeMemBuffer(8)
        b.buffer_store(0xDEAD)
        b.abort()
        assert b.writeback() == []
