"""Tests for the set-associative cache and the fully-associative buffer."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import CacheConfig
from repro.common.errors import ConfigError
from repro.mem.cache import DIRTY, PF_FAR, PREFETCHED, WRONG, SetAssocCache
from repro.mem.fully_assoc import FullyAssocBuffer


def make_cache(size=256, assoc=1, block=64):
    return SetAssocCache(CacheConfig(size=size, assoc=assoc, block_size=block, name="t"))


class TestGeometry:
    def test_block_of(self):
        c = make_cache()
        assert c.block_of(0) == 0
        assert c.block_of(63) == 0
        assert c.block_of(64) == 1

    def test_set_index_wraps(self):
        c = make_cache(size=256, assoc=1)  # 4 sets
        assert c.set_index(0) == 0
        assert c.set_index(4) == 0
        assert c.set_index(5) == 1


class TestLookupInsert:
    def test_miss_then_hit(self):
        c = make_cache()
        assert c.lookup(10) is None
        assert c.insert(10, 0) is None
        assert c.lookup(10) == 0

    def test_insert_returns_victim(self):
        c = make_cache(size=64, assoc=1)  # 1 set, 1 way
        c.insert(1, DIRTY)
        victim = c.insert(2, 0)
        assert victim == (1, DIRTY)
        assert 1 not in c and 2 in c

    def test_reinsert_refreshes_and_replaces_flags(self):
        c = make_cache(size=128, assoc=2)  # 1 set, 2-way
        c.insert(0, DIRTY)
        c.insert(2, 0)
        # Reinsert block 0: becomes MRU with new flags.
        assert c.insert(0, WRONG) is None
        victim = c.insert(4, 0)
        assert victim == (2, 0)  # block 2 was LRU
        assert c.probe(0) == WRONG

    def test_lru_order_via_lookup(self):
        c = make_cache(size=128, assoc=2)  # 1 set, 2-way
        c.insert(0, 0)
        c.insert(2, 0)
        c.lookup(0)  # refresh 0
        victim = c.insert(4, 0)
        assert victim[0] == 2

    def test_probe_does_not_refresh(self):
        c = make_cache(size=128, assoc=2)
        c.insert(0, 0)
        c.insert(2, 0)
        c.probe(0)  # no refresh
        victim = c.insert(4, 0)
        assert victim[0] == 0


class TestFlags:
    def test_or_and_clear(self):
        c = make_cache()
        c.insert(3, 0)
        c.or_flags(3, DIRTY | WRONG)
        assert c.probe(3) == DIRTY | WRONG
        c.clear_flags(3, WRONG)
        assert c.probe(3) == DIRTY

    def test_set_flags(self):
        c = make_cache()
        c.insert(3, DIRTY)
        c.set_flags(3, PREFETCHED | PF_FAR)
        assert c.probe(3) == PREFETCHED | PF_FAR

    def test_flag_ops_on_absent_block(self):
        c = make_cache()
        for op in (c.or_flags, c.clear_flags, c.set_flags):
            with pytest.raises(ConfigError):
                op(99, DIRTY)

    def test_flag_bits_distinct(self):
        assert len({DIRTY, WRONG, PREFETCHED, PF_FAR}) == 4
        assert DIRTY & WRONG == 0 and PREFETCHED & PF_FAR == 0


class TestInvalidateFlush:
    def test_invalidate(self):
        c = make_cache()
        c.insert(5, DIRTY)
        assert c.invalidate(5) == DIRTY
        assert c.invalidate(5) is None
        assert 5 not in c

    def test_flush_returns_all(self):
        c = make_cache(size=256, assoc=1)
        for b in range(4):
            c.insert(b, b % 2)
        flushed = dict(c.flush())
        assert flushed == {0: 0, 1: 1, 2: 0, 3: 1}
        assert c.occupancy() == 0

    def test_resident_blocks(self):
        c = make_cache()
        c.insert(1, DIRTY)
        c.insert(2, 0)
        assert dict(c.resident_blocks()) == {1: DIRTY, 2: 0}


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["insert", "lookup", "invalidate"]),
                  st.integers(min_value=0, max_value=31)),
        max_size=300,
    ),
    assoc=st.sampled_from([1, 2, 4]),
)
def test_cache_matches_reference_lru_model(ops, assoc):
    """The cache must behave exactly like a per-set LRU list model."""
    n_sets = 8 // assoc
    cache = SetAssocCache(
        CacheConfig(size=8 * 64, assoc=assoc, block_size=64, name="ref")
    )
    # Reference: per-set ordered dict of blocks.
    ref = {i: [] for i in range(n_sets)}  # LRU at front

    for op, block in ops:
        s = block % n_sets
        if op == "insert":
            got = cache.insert(block, 0)
            if block in ref[s]:
                ref[s].remove(block)
                ref[s].append(block)
                assert got is None
            else:
                if len(ref[s]) >= assoc:
                    victim = ref[s].pop(0)
                    assert got is not None and got[0] == victim
                else:
                    assert got is None
                ref[s].append(block)
        elif op == "lookup":
            got = cache.lookup(block)
            if block in ref[s]:
                assert got is not None
                ref[s].remove(block)
                ref[s].append(block)
            else:
                assert got is None
        else:
            got = cache.invalidate(block)
            if block in ref[s]:
                assert got is not None
                ref[s].remove(block)
            else:
                assert got is None
        # Invariant: occupancy within capacity.
        assert len(ref[s]) <= assoc
    assert cache.occupancy() == sum(len(v) for v in ref.values())


class TestFullyAssocBuffer:
    def test_capacity_one_minimum(self):
        with pytest.raises(ConfigError):
            FullyAssocBuffer(0)

    def test_lru_eviction(self):
        b = FullyAssocBuffer(2)
        b.insert(1, 0)
        b.insert(2, 0)
        b.lookup(1)  # refresh
        evicted = b.insert(3, 0)
        assert evicted == (2, 0)
        assert 1 in b and 3 in b

    def test_probe_no_refresh(self):
        b = FullyAssocBuffer(2)
        b.insert(1, 0)
        b.insert(2, 0)
        b.probe(1)
        assert b.insert(3, 0)[0] == 1

    def test_remove(self):
        b = FullyAssocBuffer(2)
        b.insert(1, DIRTY)
        assert b.remove(1) == DIRTY
        assert b.remove(1) is None
        assert len(b) == 0

    def test_set_flags_absent(self):
        b = FullyAssocBuffer(2)
        with pytest.raises(ConfigError):
            b.set_flags(9, DIRTY)

    def test_flush(self):
        b = FullyAssocBuffer(4)
        b.insert(1, 0)
        b.insert(2, DIRTY)
        assert dict(b.flush()) == {1: 0, 2: DIRTY}
        assert len(b) == 0

    def test_items_lru_order(self):
        b = FullyAssocBuffer(3)
        b.insert(1, 0)
        b.insert(2, 0)
        b.lookup(1)
        assert [blk for blk, _ in b.items()] == [2, 1]

    @given(
        ops=st.lists(st.integers(min_value=0, max_value=20), max_size=200),
        cap=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=50, deadline=None)
    def test_never_exceeds_capacity(self, ops, cap):
        b = FullyAssocBuffer(cap)
        for block in ops:
            b.insert(block, 0)
            assert len(b) <= cap
