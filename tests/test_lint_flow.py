"""Tests for the whole-program flow pass (``repro lint --flow``).

Fixture projects are synthetic ``repro`` packages written under
``tmp_path`` — module discovery anchors on the enclosing ``repro``
directory, so the fixtures land in the real rule scopes
(``repro.sim.fast`` for ENG*, ``repro.serve`` for ASY*) without
touching the shipped tree.  Each family gets a violating fixture with
a known graph/effect order and a compliant twin that stays silent.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint import lint_paths, lint_source, render_sarif
from repro.lint.flow import load_project, counter_sequence, run_flow

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src" / "repro"


def write_pkg(tmp_path: Path, files: dict) -> list:
    """Write ``{relpath: source}`` under ``tmp_path/repro`` and return
    the file list (with ``__init__.py`` stubs for every package dir)."""
    out = []
    root = tmp_path / "repro"
    for rel, src in files.items():
        p = root / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(src)
        out.append(p)
        d = p.parent
        while d != tmp_path:
            init = d / "__init__.py"
            if not init.exists():
                init.write_text("")
                out.append(init)
            d = d.parent
    return out


def flow_rules_fired(tmp_path: Path, files: dict) -> set:
    return {f.rule for f in run_flow(write_pkg(tmp_path, files))}


# ---------------------------------------------------------------------------
# call graph + effect sequences
# ---------------------------------------------------------------------------


ORACLE = """\
class Oracle:
    def __init__(self):
        self.stats = {}

    def load(self):
        self.stats["loads"] += 1
        if True:
            self.stats["hits"] += 1
        self.stats["fills"] += 1
"""


class TestEffectSequences:
    def test_known_graph_and_counter_order(self, tmp_path):
        files = write_pkg(tmp_path, {
            "mem/oracle.py": ORACLE,
            "sim/fast/engine.py": (
                "class Fast:\n"
                "    def __init__(self):\n"
                "        self.stats = {}\n"
                "    def _helper(self):\n"
                '        self.stats["hits"] += 1\n'
                "    def _load(self):\n"
                '        self.stats["loads"] += 1\n'
                "        self._helper()\n"
                '        self.stats["fills"] += 1\n'
            ),
        })
        proj = load_project(files)
        fast = proj.functions["repro.sim.fast.engine.Fast._load"]
        names = [name for _ns, name, _line in counter_sequence(proj, fast)]
        # the helper's counter is flattened in call order
        assert names == ["loads", "hits", "fills"]
        oracle = proj.functions["repro.mem.oracle.Oracle.load"]
        names = [name for _ns, name, _line in counter_sequence(proj, oracle)]
        # both branch arms contribute in source order
        assert names == ["loads", "hits", "fills"]


# ---------------------------------------------------------------------------
# ENG001 / ENG002: transcription parity
# ---------------------------------------------------------------------------


class TestEngineParity:
    def test_matching_transcription_is_silent(self, tmp_path):
        fired = flow_rules_fired(tmp_path, {
            "mem/oracle.py": ORACLE,
            "sim/fast/engine.py": (
                "class Fast:\n"
                "    def __init__(self):\n"
                "        self.stats = {}\n"
                "    # parity: repro.mem.oracle.Oracle.load\n"
                "    def _load(self):\n"
                '        self.stats["loads"] += 1\n'
                '        self.stats["hits"] += 1\n'
                '        self.stats["fills"] += 1\n'
            ),
        })
        assert "ENG001" not in fired
        assert "ENG002" not in fired

    def test_reordered_transcription_fires_eng001(self, tmp_path):
        findings = run_flow(write_pkg(tmp_path, {
            "mem/oracle.py": ORACLE,
            "sim/fast/engine.py": (
                "class Fast:\n"
                "    def __init__(self):\n"
                "        self.stats = {}\n"
                "    # parity: repro.mem.oracle.Oracle.load\n"
                "    def _load(self):\n"
                '        self.stats["loads"] += 1\n'
                '        self.stats["fills"] += 1\n'
                '        self.stats["hits"] += 1\n'
            ),
        }))
        eng = [f for f in findings if f.rule == "ENG001"]
        assert len(eng) == 1
        assert "diverges" in eng[0].message
        assert "hits" in eng[0].message and "fills" in eng[0].message

    def test_untagged_counter_site_fires_eng002(self, tmp_path):
        fired = flow_rules_fired(tmp_path, {
            "sim/fast/engine.py": (
                "class Fast:\n"
                "    def __init__(self):\n"
                "        self.stats = {}\n"
                "    def _load(self):\n"
                '        self.stats["loads"] += 1\n'
            ),
        })
        assert "ENG002" in fired

    def test_helper_reachable_from_tagged_site_is_exempt(self, tmp_path):
        fired = flow_rules_fired(tmp_path, {
            "mem/oracle.py": ORACLE,
            "sim/fast/engine.py": (
                "class Fast:\n"
                "    def __init__(self):\n"
                "        self.stats = {}\n"
                "    def _helper(self):\n"
                '        self.stats["hits"] += 1\n'
                '        self.stats["fills"] += 1\n'
                "    # parity: repro.mem.oracle.Oracle.load\n"
                "    def _load(self):\n"
                '        self.stats["loads"] += 1\n'
                "        self._helper()\n"
            ),
        })
        assert "ENG002" not in fired
        assert "ENG001" not in fired

    def test_unresolvable_parity_tag_fires_eng002(self, tmp_path):
        findings = run_flow(write_pkg(tmp_path, {
            "sim/fast/engine.py": (
                "class Fast:\n"
                "    def __init__(self):\n"
                "        self.stats = {}\n"
                "    # parity: repro.mem.oracle.Oracle.nope\n"
                "    def _load(self):\n"
                '        self.stats["loads"] += 1\n'
            ),
        }))
        eng = [f for f in findings if f.rule == "ENG002"]
        assert any("does not resolve" in f.message for f in eng)

    def test_out_of_scope_counters_ignored(self, tmp_path):
        # counters outside repro.sim.fast never need parity tags
        fired = flow_rules_fired(tmp_path, {
            "serve/counters.py": (
                "class C:\n"
                "    def __init__(self):\n"
                "        self.stats = {}\n"
                "    def bump(self):\n"
                '        self.stats["n"] += 1\n'
            ),
        })
        assert "ENG002" not in fired


# ---------------------------------------------------------------------------
# ASY001-ASY003: async safety
# ---------------------------------------------------------------------------


class TestAsyncSafety:
    def test_blocking_two_hops_away_fires_asy001(self, tmp_path):
        findings = run_flow(write_pkg(tmp_path, {
            "serve/app.py": (
                "import time\n"
                "def leaf():\n"
                "    time.sleep(0.1)\n"
                "def middle():\n"
                "    leaf()\n"
                "async def handler():\n"
                "    middle()\n"
            ),
        }))
        asy = [f for f in findings if f.rule == "ASY001"]
        assert len(asy) == 1
        assert asy[0].line == 7  # the call site inside the async def
        assert "middle" in asy[0].message and "leaf" in asy[0].message

    def test_to_thread_offload_is_silent(self, tmp_path):
        fired = flow_rules_fired(tmp_path, {
            "serve/app.py": (
                "import asyncio, time\n"
                "def leaf():\n"
                "    time.sleep(0.1)\n"
                "async def handler():\n"
                "    await asyncio.to_thread(leaf)\n"
            ),
        })
        assert "ASY001" not in fired

    def test_dropped_coroutine_fires_asy002(self, tmp_path):
        findings = run_flow(write_pkg(tmp_path, {
            "serve/app.py": (
                "async def work():\n"
                "    return 1\n"
                "async def handler():\n"
                "    work()\n"
            ),
        }))
        asy = [f for f in findings if f.rule == "ASY002"]
        assert len(asy) == 1
        assert asy[0].line == 4

    def test_awaited_coroutine_is_silent(self, tmp_path):
        fired = flow_rules_fired(tmp_path, {
            "serve/app.py": (
                "async def work():\n"
                "    return 1\n"
                "async def handler():\n"
                "    await work()\n"
            ),
        })
        assert "ASY002" not in fired

    def test_unguarded_mutation_fires_asy003(self, tmp_path):
        findings = run_flow(write_pkg(tmp_path, {
            "serve/app.py": (
                "import threading\n"
                "class Box:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self.items = []\n"
                "    def good(self):\n"
                "        with self._lock:\n"
                "            self.items.append(1)\n"
                "    def bad(self):\n"
                "        self.items.append(2)\n"
            ),
        }))
        asy = [f for f in findings if f.rule == "ASY003"]
        assert len(asy) == 1
        assert asy[0].line == 10

    def test_all_mutations_guarded_is_silent(self, tmp_path):
        fired = flow_rules_fired(tmp_path, {
            "serve/app.py": (
                "import threading\n"
                "class Box:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self.items = []\n"
                "    def good(self):\n"
                "        with self._lock:\n"
                "            self.items.append(1)\n"
            ),
        })
        assert "ASY003" not in fired


# ---------------------------------------------------------------------------
# interprocedural DET001/DET004
# ---------------------------------------------------------------------------


class TestInterproceduralDet:
    def test_wallclock_via_exempt_module_fires_det001(self, tmp_path):
        findings = run_flow(write_pkg(tmp_path, {
            "util/clock.py": (
                "import time\n"
                "def now():\n"
                "    return time.perf_counter()\n"
            ),
            "core/unit.py": (
                "from repro.util.clock import now\n"
                "def step():\n"
                "    return now()\n"
            ),
        }))
        det = [f for f in findings if f.rule == "DET001"]
        assert len(det) == 1
        assert det[0].path.endswith("core/unit.py")
        assert "exempt module" in det[0].message

    def test_clean_exempt_callee_is_silent(self, tmp_path):
        fired = flow_rules_fired(tmp_path, {
            "util/mathy.py": "def double(x):\n    return 2 * x\n",
            "core/unit.py": (
                "from repro.util.mathy import double\n"
                "def step():\n"
                "    return double(21)\n"
            ),
        })
        assert "DET001" not in fired and "DET004" not in fired


# ---------------------------------------------------------------------------
# engine fixes that ride along: decorated-def allow tags, missing baseline
# ---------------------------------------------------------------------------


class TestEngineFixes:
    def test_allow_tag_above_decorator_suppresses(self):
        src = (
            "from dataclasses import dataclass\n"
            "# lint: allow(KEY001 legacy config stays mutable for pickling)\n"
            "@dataclass\n"
            "class C:\n"
            "    x: int = 0\n"
        )
        findings, _ = lint_source(src, module="repro.common.config")
        assert not findings

    def test_allow_tag_far_above_decorator_does_not_suppress(self):
        src = (
            "# lint: allow(KEY001 too far away to count)\n"
            "from dataclasses import dataclass\n"
            "\n"
            "@dataclass\n"
            "class C:\n"
            "    x: int = 0\n"
        )
        findings, _ = lint_source(src, module="repro.common.config")
        assert any(f.rule == "KEY001" for f in findings)

    def test_missing_baseline_file_is_reported_not_fatal(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        base = tmp_path / "base.json"
        base.write_text(json.dumps({
            "version": 1,
            "entries": [{"rule": "DET002", "path": "gone.py", "line": 3,
                         "reason": "file was deleted since"}],
        }))
        report = lint_paths([tmp_path], baseline=base)
        assert len(report.missing_baseline) == 1
        assert report.stale_baseline == []
        assert "no longer exists" in report.render_text()
        assert report.to_dict()["missing_baseline"][0]["path"] == "gone.py"


# ---------------------------------------------------------------------------
# SARIF export
# ---------------------------------------------------------------------------


class TestSarif:
    def test_sarif_shape(self, tmp_path):
        (tmp_path / "a.py").write_text(
            "import random\nx = random.random()\n"
        )
        report = lint_paths([tmp_path])
        assert report.findings
        doc = render_sarif(report)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"ENG001", "ENG002", "ASY001", "ASY002", "ASY003"} <= rule_ids
        res = run["results"][0]
        assert res["ruleId"] == report.findings[0].rule
        region = res["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == report.findings[0].line
        # SARIF columns are 1-based; Finding.col is a 0-based AST offset
        assert region["startColumn"] == report.findings[0].col + 1


# ---------------------------------------------------------------------------
# the shipped tree itself
# ---------------------------------------------------------------------------


class TestShippedTree:
    def test_repo_is_flow_clean(self):
        report = lint_paths([SRC], flow=True)
        flow_findings = [
            f for f in report.findings
            if f.rule.startswith(("ENG", "ASY"))
        ]
        assert flow_findings == []

    def test_every_fast_transcription_site_is_tagged(self):
        engine = (SRC / "sim" / "fast" / "engine.py").read_text()
        assert engine.count("# parity:") >= 16
