"""Tests for the cache-only fast replay mode."""

from __future__ import annotations

import pytest

from repro.common.config import SimParams
from repro.sim.cache_only import replay_cache_only
from repro.sim.driver import run_simulation
from repro.sta.configs import named_config
from repro.workloads.benchmarks import build_benchmark

SCALE = 3e-5
PARAMS = SimParams(seed=9, scale=SCALE)


class TestEquivalence:
    """Cache-only replay must reproduce the timed simulator's memory
    statistics exactly — same traces, same replay order, same policies."""

    @pytest.mark.parametrize("config", ["orig", "wth-wp-wec", "nlp", "vc"])
    def test_matches_timed_run(self, config):
        prog = build_benchmark("175.vpr", SCALE)
        timed = run_simulation(prog, named_config(config), PARAMS)
        fast = replay_cache_only(prog, named_config(config), PARAMS)
        assert fast.l1_misses == timed.l1_misses
        assert fast.effective_misses == timed.effective_misses
        assert fast.sidecar_hits == timed.sidecar_hits
        assert fast.useful_wrong_hits == timed.useful_wrong_hits
        assert fast.prefetches == timed.prefetches
        assert fast.l2_accesses == timed.l2_accesses
        assert fast.l2_misses == timed.l2_misses

    def test_wrong_thread_loads_match(self):
        prog = build_benchmark("181.mcf", SCALE)
        cfg = named_config("wth-wp-wec")
        timed = run_simulation(prog, cfg, PARAMS)
        fast = replay_cache_only(prog, cfg, PARAMS)
        assert fast.wrong_loads == timed.wrong_loads


class TestInterface:
    def test_accepts_name(self):
        r = replay_cache_only("164.gzip", named_config("orig"), PARAMS)
        assert r.benchmark == "164.gzip"
        assert r.loads > 0

    def test_rates(self):
        r = replay_cache_only("164.gzip", named_config("orig"), PARAMS)
        assert 0.0 < r.l1_miss_rate < 1.0
        assert r.effective_miss_rate <= r.l1_miss_rate

    def test_counters_exported(self):
        r = replay_cache_only("164.gzip", named_config("orig"), PARAMS)
        assert any(k.startswith("l2.") for k in r.counters)

    def test_orig_has_no_wrong_activity(self):
        r = replay_cache_only("164.gzip", named_config("orig"), PARAMS)
        assert r.wrong_loads == 0 and r.wrong_fills == 0

    def test_deterministic(self):
        a = replay_cache_only("175.vpr", named_config("nlp"), PARAMS)
        b = replay_cache_only("175.vpr", named_config("nlp"), PARAMS)
        assert a.counters == b.counters
