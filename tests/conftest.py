"""Shared fixtures for the test suite.

Tests run at much smaller instruction scales than the calibrated
benchmark defaults — the goal here is exercising mechanisms, not
reproducing figures (the ``benchmarks/`` tree does that).
"""

from __future__ import annotations

import pytest

from repro.common.config import (
    CacheConfig,
    MachineConfig,
    MemorySystemConfig,
    SidecarConfig,
    SidecarKind,
    SimParams,
    ThreadUnitConfig,
)
from repro.mem.l2 import SharedL2

#: Instruction scale used by integration-ish tests (fast).
FAST_SCALE = 5e-5


@pytest.fixture
def fast_params() -> SimParams:
    """Small, warm-up-free simulation parameters for unit tests."""
    return SimParams(seed=7, scale=FAST_SCALE, warmup_invocations=0)


@pytest.fixture
def tiny_l1() -> CacheConfig:
    """A 4-block direct-mapped L1 for deterministic eviction tests."""
    return CacheConfig(size=256, assoc=1, block_size=64, name="l1d")


@pytest.fixture
def tiny_l1_2way() -> CacheConfig:
    """A 2-way, 4-set L1 (8 blocks)."""
    return CacheConfig(size=512, assoc=2, block_size=64, name="l1d")


@pytest.fixture
def l1i_cfg() -> CacheConfig:
    return CacheConfig(size=1024, assoc=2, block_size=64, name="l1i")


@pytest.fixture
def l2() -> SharedL2:
    """A small shared L2 (4KB, 4-way, 128B blocks) over 200-cycle memory."""
    return SharedL2(
        MemorySystemConfig(
            l2=CacheConfig(size=4096, assoc=4, block_size=128, hit_latency=12, name="l2")
        )
    )


def make_mem_system(kind: SidecarKind, l1_cfg, l1i, shared_l2, entries: int = 4):
    """Build a TUMemSystem with the given sidecar policy."""
    from repro.mem.hierarchy import TUMemSystem

    return TUMemSystem(
        0, l1_cfg, l1i, SidecarConfig(kind=kind, entries=entries), shared_l2
    )


@pytest.fixture
def machine_cfg_small() -> MachineConfig:
    """A 2-TU machine with tiny caches (fast end-to-end tests)."""
    return MachineConfig(
        name="test",
        n_thread_units=2,
        tu=ThreadUnitConfig(
            issue_width=4,
            rob_size=32,
            lsq_size=32,
            l1d=CacheConfig(size=1024, assoc=1, block_size=64, name="l1d"),
            l1i=CacheConfig(size=1024, assoc=2, block_size=64, name="l1i"),
        ),
        mem=MemorySystemConfig(
            l2=CacheConfig(size=8192, assoc=4, block_size=128, hit_latency=12, name="l2")
        ),
    )
