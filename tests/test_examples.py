"""Smoke tests: the shipped examples must run and tell their story.

Each example is executed in a subprocess (as a user would run it) with
a generous timeout; we assert on the presence of the key output lines
rather than exact numbers.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 300, cwd=None) -> str:
    env = os.environ.copy()
    # Absolute src path: a relative PYTHONPATH=src would break under cwd.
    env["PYTHONPATH"] = os.pathsep.join(
        [str(EXAMPLES.parent / "src"), env.get("PYTHONPATH", "")]
    )
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        cwd=cwd,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "181.mcf" in out
        assert "speedup" in out
        assert "wrong-thread loads" in out

    def test_wrong_execution_anatomy(self):
        out = run_example("wrong_execution_anatomy.py", "175.vpr")
        assert "configuration ladder" in out
        assert "wth-wp-wec" in out
        assert "nlp" in out
        assert "Reading guide:" in out

    def test_custom_workload(self):
        out = run_example("custom_workload.py")
        assert "custom stencil workload" in out
        assert "baseline" in out

    def test_trace_wrong_execution(self, tmp_path):
        # cwd=tmp_path: the example writes its trace file to the cwd.
        out = run_example("trace_wrong_execution.py", "1e-4", cwd=tmp_path)
        assert "wrong-execution fills" in out
        assert "used by correct path" in out
        assert "gap distribution" in out
        assert (tmp_path / "wrong_execution_trace.json").exists()

    def test_design_space_sweep_small(self):
        out = run_example("design_space_sweep.py", "2e-5")
        assert "suite-average speedup" in out
        assert "WEC 8" in out
        assert "beats" in out or "does not beat" in out
