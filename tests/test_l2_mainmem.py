"""Tests for the shared L2 and main-memory models."""

from __future__ import annotations

import pytest

from repro.common.config import CacheConfig, MemorySystemConfig
from repro.common.errors import ConfigError
from repro.mem.cache import DIRTY
from repro.mem.l2 import SharedL2
from repro.mem.mainmem import MainMemory


def make_l2(size=4096, latency=200):
    return SharedL2(
        MemorySystemConfig(
            l2=CacheConfig(size=size, assoc=4, block_size=128, hit_latency=12, name="l2"),
            memory_latency=latency,
        )
    )


class TestMainMemory:
    def test_read_latency_and_count(self):
        mem = MainMemory(200)
        assert mem.read() == 200
        assert mem.stats["reads"] == 1

    def test_write_posted(self):
        mem = MainMemory(200)
        mem.write()
        assert mem.stats["writes"] == 1

    def test_nonpositive_latency(self):
        with pytest.raises(ConfigError):
            MainMemory(0)

    def test_reset(self):
        mem = MainMemory(100)
        mem.read()
        mem.reset()
        assert mem.stats["reads"] == 0


class TestSharedL2:
    def test_cold_read_goes_to_memory(self):
        l2 = make_l2()
        assert l2.read(0x1000, tu_id=0) == 200
        assert l2.stats["misses"] == 1
        assert l2.memory.stats["reads"] == 1

    def test_second_read_hits(self):
        l2 = make_l2()
        l2.read(0x1000, 0)
        assert l2.read(0x1000, 0) == 12
        assert l2.stats["hits"] == 1

    def test_block_granularity_is_128(self):
        l2 = make_l2()
        l2.read(0x1000, 0)
        # Same 128-byte block, different 64-byte half: still a hit.
        assert l2.read(0x1040, 0) == 12

    def test_wrong_and_prefetch_accounting(self):
        l2 = make_l2()
        l2.read(0x0, 0, wrong=True)
        l2.read(0x1000, 0, prefetch=True)
        assert l2.stats["wrong_accesses"] == 1
        assert l2.stats["prefetch_accesses"] == 1
        assert l2.stats["accesses"] == 2

    def test_writeback_allocates(self):
        l2 = make_l2()
        l2.writeback(0x2000, 0)
        # The block is now resident (and dirty): a read hits.
        assert l2.read(0x2000, 0) == 12

    def test_writeback_to_resident_sets_dirty(self):
        l2 = make_l2()
        l2.read(0x2000, 0)
        l2.writeback(0x2000, 0)
        block = l2.cache.block_of(0x2000)
        assert l2.cache.probe(block) & DIRTY

    def test_dirty_eviction_reaches_memory(self):
        l2 = make_l2(size=512)  # 4 blocks, 1 set (4-way)
        l2.writeback(0 * 128, 0)  # dirty
        for b in range(1, 5):     # fill the set, evicting the dirty block
            l2.read(b * 128, 0)
        assert l2.memory.stats["writes"] == 1
        assert l2.stats["writebacks_to_memory"] == 1

    def test_miss_rate(self):
        l2 = make_l2()
        l2.read(0x0, 0)
        l2.read(0x0, 0)
        assert l2.miss_rate() == pytest.approx(0.5)
        l2.reset()
        assert l2.miss_rate() == 0.0

    def test_reset_drops_contents(self):
        l2 = make_l2()
        l2.read(0x0, 0)
        l2.reset()
        assert l2.read(0x0, 0) == 200  # cold again
