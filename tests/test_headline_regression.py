"""Headline-number regression guard at the calibrated scale.

The bench suite asserts the full figure set; this (slow) test pins just
the headline quantities under plain ``pytest tests/`` so that a change
which silently breaks the reproduction cannot land green.

It runs through the *performance observatory* path end to end: the
sweep executor records every cell into a ledger, the bands are asserted
from the recorded metrics, and the whole record set is compared
benchstat-style against a checked-in reference export
(``tests/data/headline_reference.json``).  Refreshing the reference
after an intentional model change::

    PYTHONPATH=src python - <<'EOF'
    import tempfile
    from repro import SimParams, named_config
    from repro.obs.ledger import Ledger, write_export
    from repro.sim.executor import SweepCell, run_cells
    params = SimParams(seed=2003, scale=2e-4)
    configs = {n: named_config(n) for n in ("orig", "wth-wp-wec", "nlp")}
    cells = [SweepCell(b, n, c, params)
             for b in ("175.vpr", "164.gzip", "181.mcf", "197.parser",
                       "183.equake", "177.mesa")
             for n, c in configs.items()]
    with tempfile.TemporaryDirectory() as d:
        run_cells(cells, jobs=4, cache=False, perf=True, perf_dir=d)
        write_export(Ledger(d).records(),
                     "tests/data/headline_reference.json")
    EOF
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import SimParams, named_config
from repro.common.stats import weighted_mean_speedup
from repro.obs.compare import compare_records
from repro.obs.ledger import Ledger, load_records
from repro.sim.executor import SweepCell, run_cells

BENCHES = ("175.vpr", "164.gzip", "181.mcf", "197.parser",
           "183.equake", "177.mesa")
CONFIGS = ("orig", "wth-wp-wec", "nlp")

REFERENCE = Path(__file__).parent / "data" / "headline_reference.json"

#: Two-sided drift tolerance vs the checked-in reference, per group, on
#: total_cycles.  The legacy absolute bands (e.g. wec suite average in
#: 6–14% around a ~10% center) allowed roughly ±40% relative movement;
#: 35% keeps that head-room while still catching real breakage.
DRIFT_TOLERANCE_PCT = 35.0


@pytest.mark.slow
def test_headline_numbers_in_band(tmp_path):
    params = SimParams(seed=2003, scale=2e-4)
    configs = {name: named_config(name) for name in CONFIGS}
    cells = [
        SweepCell(bench, name, cfg, params)
        for bench in BENCHES
        for name, cfg in configs.items()
    ]
    # cache=False so every cell truly executes and lands in the ledger
    # (the recorder skips cache hits — their wall time is a disk read).
    run_cells(cells, cache=False, perf=True, perf_dir=tmp_path,
              perf_context="headline-test")
    records = Ledger(tmp_path).records()
    assert len(records) == len(cells), "every executed cell must be recorded"

    by_key = {(r.benchmark, r.config): r for r in records}

    def suite_avg(label: str) -> float:
        base = [by_key[(b, "orig")].sim["total_cycles"] for b in BENCHES]
        new = [by_key[(b, label)].sim["total_cycles"] for b in BENCHES]
        return (weighted_mean_speedup(base, new) - 1.0) * 100.0

    wec_avg = suite_avg("wth-wp-wec")
    nlp_avg = suite_avg("nlp")
    # The executor filled speedup_pct in from the grid's own orig cell.
    mcf = by_key[("181.mcf", "wth-wp-wec")].sim["speedup_pct"]

    # Paper: +9.7% / +5.5% / +18.5%.  Bands leave room for small model
    # changes while catching real regressions.
    assert 6.0 < wec_avg < 14.0, f"wec suite average drifted: {wec_avg:+.1f}%"
    assert 2.5 < nlp_avg < 9.0, f"nlp suite average drifted: {nlp_avg:+.1f}%"
    assert nlp_avg < wec_avg, "nlp must not beat the WEC on average"
    assert 13.0 < mcf < 26.0, f"mcf wec gain drifted: {mcf:+.1f}%"
    assert mcf == max(
        by_key[(b, "wth-wp-wec")].sim["speedup_pct"] for b in BENCHES
    ), "mcf must remain the largest WEC winner"

    # Benchstat comparison against the checked-in reference: every
    # (benchmark, config) group must exist on both sides, and the
    # deterministic cycle counts must stay within the drift band.
    reference = load_records(REFERENCE)
    report = compare_records(reference, records)
    assert not report.unmatched, (
        f"groups missing on one side: {report.unmatched}"
    )
    assert len(report.groups) == len(cells)
    for group in report.groups:
        mc = group.metrics["total_cycles"]
        assert abs(mc.delta_pct) < DRIFT_TOLERANCE_PCT, (
            f"{group.benchmark}/{group.config}: total_cycles moved "
            f"{mc.delta_pct:+.1f}% vs reference ({mc.ref_mean:.0f} -> "
            f"{mc.new_mean:.0f}); refresh tests/data/"
            f"headline_reference.json if intentional"
        )
    assert report.suite_speedup_pct is not None
    assert abs(report.suite_speedup_pct) < DRIFT_TOLERANCE_PCT
