"""Headline-number regression guard at the calibrated scale.

The bench suite asserts the full figure set; this (slow) test pins just
the three headline quantities under plain ``pytest tests/`` so that a
change which silently breaks the reproduction cannot land green.
"""

from __future__ import annotations

import pytest

from repro import SimParams, build_benchmark, named_config, run_program
from repro.analysis.speedup import suite_average_speedup_pct

BENCHES = ("175.vpr", "164.gzip", "181.mcf", "197.parser",
           "183.equake", "177.mesa")


@pytest.mark.slow
def test_headline_numbers_in_band():
    params = SimParams(seed=2003, scale=2e-4)
    grid = {}
    for bench in BENCHES:
        prog = build_benchmark(bench, params.scale)
        for cfg in ("orig", "wth-wp-wec", "nlp"):
            grid[(bench, cfg)] = run_program(prog, named_config(cfg), params)

    wec_avg = suite_average_speedup_pct(grid, "orig", "wth-wp-wec")
    nlp_avg = suite_average_speedup_pct(grid, "orig", "nlp")
    mcf = grid[("181.mcf", "wth-wp-wec")].relative_speedup_pct_vs(
        grid[("181.mcf", "orig")]
    )

    # Paper: +9.7% / +5.5% / +18.5%.  Bands leave room for small model
    # changes while catching real regressions.
    assert 6.0 < wec_avg < 14.0, f"wec suite average drifted: {wec_avg:+.1f}%"
    assert 2.5 < nlp_avg < 9.0, f"nlp suite average drifted: {nlp_avg:+.1f}%"
    assert nlp_avg < wec_avg, "nlp must not beat the WEC on average"
    assert 13.0 < mcf < 26.0, f"mcf wec gain drifted: {mcf:+.1f}%"
    assert mcf == max(
        grid[(b, "wth-wp-wec")].relative_speedup_pct_vs(grid[(b, "orig")])
        for b in BENCHES
    ), "mcf must remain the largest WEC winner"
