"""Tests for instruction classes, mixes, CFGs and trace encoding."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import WorkloadError
from repro.isa.cfg import BlockSpec, BranchSpec, IterationCFG, MemSlot
from repro.isa.encoding import (
    EV_BRANCH,
    EV_LOAD,
    EV_STORE,
    EV_TSTORE,
    IterationTrace,
    StageSplit,
)
from repro.isa.instructions import FU_CLASS_MAP, InstrClass, InstructionMix


class TestInstructionMix:
    def test_from_weights_exact_total(self):
        mix = InstructionMix.from_weights(
            100, {InstrClass.IALU: 0.6, InstrClass.LOAD: 0.25, InstrClass.FPALU: 0.15}
        )
        assert mix.total == 100

    @given(st.integers(min_value=0, max_value=100_000))
    def test_from_weights_total_always_exact(self, total):
        mix = InstructionMix.from_weights(
            total, {InstrClass.IALU: 0.5, InstrClass.LOAD: 0.3, InstrClass.BRANCH: 0.2}
        )
        assert mix.total == total

    def test_from_weights_negative_total(self):
        with pytest.raises(Exception):
            InstructionMix.from_weights(-1, {InstrClass.IALU: 1.0})

    def test_from_weights_zero_weights(self):
        with pytest.raises(Exception):
            InstructionMix.from_weights(10, {InstrClass.IALU: 0.0})

    def test_add_and_merge(self):
        a = InstructionMix()
        a.add(InstrClass.LOAD, 3)
        b = InstructionMix()
        b.add(InstrClass.LOAD, 2)
        b.add(InstrClass.STORE, 1)
        a.merge_from(b)
        assert a.count(InstrClass.LOAD) == 5
        assert a.count(InstrClass.STORE) == 1

    def test_mem_ops_counts_tstores(self):
        m = InstructionMix()
        m.add(InstrClass.LOAD, 2)
        m.add(InstrClass.STORE, 1)
        m.add(InstrClass.TSTORE, 1)
        assert m.mem_ops == 4

    def test_scaled(self):
        m = InstructionMix({InstrClass.IALU: 100, InstrClass.LOAD: 10})
        s = m.scaled(0.5)
        assert s.count(InstrClass.IALU) == 50
        assert s.count(InstrClass.LOAD) == 5

    def test_fu_demand_pools(self):
        m = InstructionMix()
        m.add(InstrClass.IALU, 4)
        m.add(InstrClass.LOAD, 2)   # address generation -> int_alu
        m.add(InstrClass.FPMULT, 3)
        d = m.fu_demand()
        assert d["int_alu"] == 6
        assert d["fp_mult"] == 3

    def test_fu_map_covers_compute_classes(self):
        for klass in (InstrClass.IALU, InstrClass.FPALU, InstrClass.LOAD,
                      InstrClass.STORE, InstrClass.BRANCH):
            assert klass in FU_CLASS_MAP


def _simple_cfg(noise: float = 0.0) -> IterationCFG:
    return IterationCFG(
        entry="a",
        blocks=[
            BlockSpec(
                "a",
                n_instr=10,
                mem_slots=(MemSlot("p"), MemSlot("q", is_store=True)),
                branch=BranchSpec(0.7, "b", None, noise=noise),
            ),
            BlockSpec(
                "b",
                n_instr=5,
                mem_slots=(MemSlot("q", is_store=True, is_target_store=True),),
            ),
        ],
    )


class TestCFGValidation:
    def test_unknown_entry(self):
        with pytest.raises(WorkloadError):
            IterationCFG(entry="missing", blocks=[BlockSpec("a", 1)])

    def test_unknown_target(self):
        with pytest.raises(WorkloadError):
            IterationCFG(
                entry="a",
                blocks=[BlockSpec("a", 1, branch=BranchSpec(0.5, "ghost", None))],
            )

    def test_duplicate_names(self):
        with pytest.raises(WorkloadError):
            IterationCFG(entry="a", blocks=[BlockSpec("a", 1), BlockSpec("a", 2)])

    def test_branch_and_next_block_exclusive(self):
        with pytest.raises(WorkloadError):
            BlockSpec("a", 1, branch=BranchSpec(0.5, None, None), next_block="b")

    def test_bad_probabilities(self):
        with pytest.raises(WorkloadError):
            BranchSpec(1.5, None, None)
        with pytest.raises(WorkloadError):
            BranchSpec(0.5, None, None, noise=2.0)

    def test_target_store_must_be_store(self):
        with pytest.raises(WorkloadError):
            MemSlot("p", is_store=False, is_target_store=True)

    def test_infinite_loop_guard(self):
        cfg = IterationCFG(
            entry="a",
            blocks=[BlockSpec("a", 1, branch=BranchSpec(1.0, "a", None))],
        )
        with pytest.raises(WorkloadError):
            cfg.walk(np.random.default_rng(0))


class TestCFGWalk:
    def test_walk_counts(self):
        cfg = _simple_cfg()
        rng = np.random.default_rng(0)
        w = cfg.walk(rng)
        # a (10 instr + 1 branch) always; b (5) with p=0.7.
        assert w.n_instr in (11, 16)
        assert len(w.branches) == 1
        assert w.blocks_executed in (1, 2)

    def test_mem_slot_positions_within_stream(self):
        cfg = _simple_cfg()
        w = cfg.walk(np.random.default_rng(1))
        for pos, _, _, _ in w.mem_ops:
            assert 0 <= pos < w.n_instr

    def test_branch_pc_stable(self):
        cfg = _simple_cfg()
        pcs = {cfg.walk(np.random.default_rng(i)).branches[0][1] for i in range(10)}
        assert len(pcs) == 1
        assert next(iter(pcs)) == cfg.branch_pc("a")

    def test_taken_frequency_tracks_probability(self):
        cfg = _simple_cfg()
        rng = np.random.default_rng(3)
        taken = sum(cfg.walk(rng).branches[0][2] for _ in range(2000))
        assert 0.6 < taken / 2000 < 0.8

    def test_noise_pulls_toward_half(self):
        cfg = _simple_cfg(noise=1.0)
        rng = np.random.default_rng(3)
        taken = sum(cfg.walk(rng).branches[0][2] for _ in range(2000))
        assert 0.4 < taken / 2000 < 0.6

    def test_target_store_flag_propagates(self):
        cfg = _simple_cfg()
        for i in range(20):
            w = cfg.walk(np.random.default_rng(i))
            if w.blocks_executed == 2:
                tstores = [m for m in w.mem_ops if m[3]]
                assert len(tstores) == 1
                return
        pytest.fail("branch never taken in 20 walks")


class TestStageSplit:
    def test_must_sum_to_one(self):
        with pytest.raises(WorkloadError):
            StageSplit(0.5, 0.5, 0.5, 0.5)

    def test_negative_fraction(self):
        with pytest.raises(WorkloadError):
            StageSplit(-0.1, 0.1, 0.9, 0.1)

    def test_cycles_split(self):
        s = StageSplit(0.1, 0.2, 0.6, 0.1)
        cont, tsag, comp, wb = s.cycles(100.0)
        assert (cont, tsag, comp, wb) == pytest.approx((10, 20, 60, 10))


def _trace() -> IterationTrace:
    return IterationTrace(
        n_instr=20,
        mix=InstructionMix({InstrClass.IALU: 16, InstrClass.LOAD: 2, InstrClass.STORE: 2}),
        load_addrs=np.array([0x100, 0x200], dtype=np.int64),
        load_pos=np.array([3, 8], dtype=np.int64),
        store_addrs=np.array([0x300, 0x400], dtype=np.int64),
        store_pos=np.array([5, 12], dtype=np.int64),
        tstore_mask=np.array([False, True]),
        branch_pcs=np.array([0x4000], dtype=np.int64),
        branch_pos=np.array([6], dtype=np.int64),
        branch_taken=np.array([True]),
    )


class TestIterationTrace:
    def test_counts(self):
        t = _trace()
        assert t.n_loads == 2 and t.n_stores == 2 and t.n_branches == 1
        assert t.n_target_stores == 1

    def test_branch_next_load(self):
        t = _trace()
        # Branch at pos 6: the first load after it is index 1 (pos 8).
        assert t.branch_next_load is not None
        assert t.branch_next_load[0] == 1

    def test_merged_events_ordered_and_complete(self):
        t = _trace()
        kinds, values, indices = t.merged_events()
        assert len(kinds) == 5
        assert list(kinds) == [EV_LOAD, EV_STORE, EV_BRANCH, EV_LOAD, EV_TSTORE]
        assert values[0] == 0x100 and values[2] == 0x4000

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(WorkloadError):
            IterationTrace(
                n_instr=1,
                mix=InstructionMix(),
                load_addrs=np.array([1], dtype=np.int64),
                load_pos=np.array([], dtype=np.int64),
                store_addrs=np.array([], dtype=np.int64),
                store_pos=np.array([], dtype=np.int64),
                tstore_mask=np.array([], dtype=bool),
                branch_pcs=np.array([], dtype=np.int64),
                branch_pos=np.array([], dtype=np.int64),
                branch_taken=np.array([], dtype=bool),
            )

    def test_future_load_addrs(self):
        t = _trace()
        fut = t.future_load_addrs(1, 5)
        assert list(fut) == [0x200]
        with pytest.raises(WorkloadError):
            t.future_load_addrs(-1, 5)

    def test_empty(self):
        t = IterationTrace.empty(7)
        assert t.n_instr == 7
        assert t.n_loads == t.n_stores == t.n_branches == 0
        kinds, _, _ = t.merged_events()
        assert len(kinds) == 0

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=0, max_size=40))
    def test_merged_events_sorted_by_position(self, positions):
        n = len(positions)
        t = IterationTrace(
            n_instr=1001,
            mix=InstructionMix(),
            load_addrs=np.arange(n, dtype=np.int64) * 64,
            load_pos=np.array(sorted(positions), dtype=np.int64),
            store_addrs=np.array([], dtype=np.int64),
            store_pos=np.array([], dtype=np.int64),
            tstore_mask=np.array([], dtype=bool),
            branch_pcs=np.array([], dtype=np.int64),
            branch_pos=np.array([], dtype=np.int64),
            branch_taken=np.array([], dtype=bool),
        )
        _, values, indices = t.merged_events()
        # Events come back in position order; indices refer correctly.
        assert list(indices) == sorted(range(n), key=lambda i: (sorted(positions)[i], i))
