"""End-to-end determinism and robustness (failure-injection) tests.

The reproduction methodology depends on two forms of determinism —
bit-identical re-runs, and identical correct-path workloads across
machine configurations — plus graceful behaviour at parameter extremes.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.common.config import SimParams
from repro.common.errors import ReproError
from repro.sim.driver import run_program, run_simulation
from repro.sta.configs import CONFIG_NAMES, named_config
from repro.workloads.benchmarks import build_benchmark
from repro.workloads.microbench import build_microbenchmark

SCALE = 3e-5


class TestBitwiseDeterminism:
    def test_rerun_identical(self):
        params = SimParams(seed=1, scale=SCALE)
        a = run_simulation("197.parser", named_config("wth-wp-wec"), params)
        b = run_simulation("197.parser", named_config("wth-wp-wec"), params)
        assert a.total_cycles == b.total_cycles
        assert a.counters == b.counters

    def test_program_rebuild_identical(self):
        """Building the program twice must not change anything."""
        params = SimParams(seed=1, scale=SCALE)
        a = run_program(build_benchmark("175.vpr", SCALE),
                        named_config("nlp"), params)
        b = run_program(build_benchmark("175.vpr", SCALE),
                        named_config("nlp"), params)
        assert a.total_cycles == b.total_cycles

    def test_config_order_does_not_leak(self):
        """Simulating other configurations in between must not change a
        run (no hidden global state)."""
        params = SimParams(seed=1, scale=SCALE)
        prog = build_benchmark("164.gzip", SCALE)
        first = run_program(prog, named_config("wth-wp-wec"), params)
        for name in ("orig", "nlp", "vc"):
            run_program(prog, named_config(name), params)
        again = run_program(prog, named_config("wth-wp-wec"), params)
        assert first.total_cycles == again.total_cycles

    def test_seed_changes_results(self):
        a = run_simulation("164.gzip", named_config("orig"),
                           SimParams(seed=1, scale=SCALE))
        b = run_simulation("164.gzip", named_config("orig"),
                           SimParams(seed=2, scale=SCALE))
        assert a.total_cycles != b.total_cycles


class TestCrossConfigWorkloadInvariance:
    @pytest.mark.parametrize("bench", ["175.vpr", "181.mcf"])
    def test_all_configs_same_correct_path(self, bench):
        params = SimParams(seed=3, scale=SCALE)
        prog = build_benchmark(bench, SCALE)
        results = [
            run_program(prog, named_config(name), params)
            for name in CONFIG_NAMES
        ]
        assert len({r.instructions for r in results}) == 1
        assert len({r.branches for r in results}) == 1
        assert len({r.l1_traffic - r.wrong_loads for r in results}) == 1


class TestParameterExtremes:
    """Failure injection: the simulator must behave sanely at the edges
    of its parameter space, not crash or emit nonsense."""

    def test_tiny_scale(self):
        r = run_simulation("181.mcf", named_config("orig"),
                           SimParams(seed=1, scale=1e-6))
        assert r.total_cycles > 0
        assert r.instructions > 0

    def test_single_tu_machine(self):
        r = run_simulation("175.vpr", named_config("wth-wp-wec", n_tus=1),
                           SimParams(seed=1, scale=SCALE))
        assert r.wrong_thread_loads == 0  # no successors to mark wrong

    def test_many_tus(self):
        r = run_simulation("164.gzip", named_config("orig", n_tus=32),
                           SimParams(seed=1, scale=SCALE))
        assert r.total_cycles > 0

    def test_one_entry_sidecar(self):
        r = run_simulation(
            "181.mcf", named_config("wth-wp-wec", sidecar_entries=1),
            SimParams(seed=1, scale=SCALE),
        )
        assert r.total_cycles > 0

    def test_huge_sidecar(self):
        params = SimParams(seed=1, scale=SCALE)
        prog = build_benchmark("181.mcf", SCALE)
        base = run_program(prog, named_config("orig"), params)
        big = run_program(
            prog, named_config("wth-wp-wec", sidecar_entries=4096), params
        )
        # A WEC as big as the whole footprint can only help.
        assert big.total_cycles < base.total_cycles

    def test_mlp_cap_one_slows_down(self):
        prog = build_benchmark("181.mcf", SCALE)
        fast = run_program(prog, named_config("orig"),
                           SimParams(seed=1, scale=SCALE, mlp_cap=4.0))
        slow = run_program(prog, named_config("orig"),
                           SimParams(seed=1, scale=SCALE, mlp_cap=1.0))
        assert slow.total_cycles > fast.total_cycles

    def test_zero_warmup_works(self):
        r = run_simulation("175.vpr", named_config("orig"),
                           SimParams(seed=1, scale=SCALE,
                                     warmup_invocations=0))
        assert r.total_cycles > 0

    def test_zero_port_charge_boosts_plain_wrong_exec(self):
        prog = build_benchmark("181.mcf", SCALE)
        charged = run_program(
            prog, named_config("wth-wp"),
            SimParams(seed=1, scale=SCALE, wrong_fill_mshr_fraction=0.75),
        )
        free = run_program(
            prog, named_config("wth-wp"),
            SimParams(seed=1, scale=SCALE, wrong_fill_mshr_fraction=0.0),
        )
        assert free.total_cycles < charged.total_cycles

    def test_microbench_scale_independent_of_simparams_scale(self):
        # Microbenchmarks size themselves by iteration count, not scale.
        prog = build_microbenchmark("stream", iters_per_invocation=20)
        r = run_program(prog, named_config("orig"),
                        SimParams(seed=1, scale=1.0))
        assert r.instructions > 0

    def test_all_library_errors_derive_from_reproerror(self):
        from repro.common.errors import (
            AnalysisError,
            ConfigError,
            SimulationError,
            WorkloadError,
        )

        for exc in (AnalysisError, ConfigError, SimulationError, WorkloadError):
            assert issubclass(exc, ReproError)
