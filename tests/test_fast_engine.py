"""Differential and unit tests for the fast trace-replay engine.

The fast engine (:mod:`repro.sim.fast`) must be *bit-identical* to the
oracle interpreter on every ``SimResult`` field — not statistically
close, equal.  The tests here enforce that contract across the full
configuration ladder and several seeds, pin down the engine-selection
rules in the driver, and cover the coherence hook (``bus_update``)
under every sidecar policy on both engines.

Executor fallback and perf-ledger clamping tests (the satellite fixes
that shipped with the engine) live here too since they are exercised
through the same engine plumbing.
"""

from __future__ import annotations

import json

import pytest

from repro.common.config import SidecarKind, SimParams
from repro.common.errors import ConfigError
from repro.mem.cache import DIRTY, WRONG, SetAssocCache
from repro.mem.hierarchy import TUMemSystem
from repro.mem.l2 import SharedL2
from repro.mem.layout import geometry_of
from repro.obs.hostprof import HostProfiler
from repro.obs.ledger import WALL_EPSILON_S, PerfRecord
from repro.sim import executor
from repro.sim.driver import run_simulation
from repro.sim.executor import SweepCell, default_engine, run_cells
from repro.sim.fast.engine import _FastMachine
from repro.sta.configs import named_config
from repro.workloads.benchmarks import build_benchmark
from repro.workloads.microbench import build_microbenchmark

#: The differential ladder: every paper configuration plus the two
#: wrong-execution ablations and the stream-prefetch extension — one
#: config per distinct policy/flag combination the engines implement.
LADDER = (
    "orig", "wp", "wth", "wth-wp", "wth-wp-wec", "vc", "nlp", "stream-pf",
)
SEEDS = (2003, 7, 42)
SCALE = 1e-5


@pytest.fixture(scope="module", autouse=True)
def _no_env_sanitizer():
    """Strip a process-wide ``REPRO_SANITIZE=1`` (the CI sanitize leg).

    The observer policy is raise-not-fallback: with the env sanitizer
    active, every ``engine="fast"`` call here would be a ConfigError by
    design.  These tests pin engines explicitly and test the sanitizer
    interplay on purpose (TestEngineSelection), so the ambient knob is
    removed first.  Module-scoped so it precedes the module-scoped
    result fixtures.
    """
    with pytest.MonkeyPatch.context() as mp:
        mp.delenv("REPRO_SANITIZE", raising=False)
        yield


@pytest.fixture(scope="module")
def mcf_program():
    # Programs are stateless/seed-independent; build once, reuse across
    # every (config, seed, engine) cell.
    return build_benchmark("181.mcf", scale=SCALE)


# ---------------------------------------------------------------------------
# Bit-identity: the acceptance contract
# ---------------------------------------------------------------------------

class TestBitIdentity:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("config_name", LADDER)
    def test_ladder_bit_identical(self, mcf_program, config_name, seed):
        cfg = named_config(config_name)
        params = SimParams(seed=seed, scale=SCALE)
        oracle = run_simulation(mcf_program, cfg, params, engine="oracle")
        fast = run_simulation(mcf_program, cfg, params, engine="fast")
        assert fast.to_dict() == oracle.to_dict()

    @pytest.mark.parametrize("kind", ["random", "mixed", "chase"])
    @pytest.mark.parametrize("config_name", ["wth-wp-wec", "nlp", "stream-pf"])
    def test_microbench_workloads_bit_identical(self, kind, config_name):
        # Synthetic access patterns (uniform random, pointer chase, the
        # mixed blend) stress sidecar/replacement paths the SPEC models
        # visit rarely at smoke scale.
        program = build_microbenchmark(kind, iters_per_invocation=80,
                                       n_invocations=3)
        cfg = named_config(config_name)
        params = SimParams(seed=7)
        oracle = run_simulation(program, cfg, params, engine="oracle")
        fast = run_simulation(program, cfg, params, engine="fast")
        assert fast.to_dict() == oracle.to_dict()

    def test_repeat_runs_deterministic(self, mcf_program):
        cfg = named_config("wth-wp-wec")
        params = SimParams(seed=42, scale=SCALE)
        first = run_simulation(mcf_program, cfg, params, engine="fast")
        second = run_simulation(mcf_program, cfg, params, engine="fast")
        assert first.to_dict() == second.to_dict()


# ---------------------------------------------------------------------------
# Engine selection rules in the driver
# ---------------------------------------------------------------------------

class TestEngineSelection:
    def test_unknown_engine_rejected(self, mcf_program):
        with pytest.raises(ConfigError, match="unknown engine"):
            run_simulation(mcf_program, named_config("orig"),
                           SimParams(scale=SCALE), engine="turbo")

    @pytest.mark.parametrize("observer", ["tracer", "sanitizer", "attrib"])
    def test_fast_rejects_event_level_observers(self, mcf_program, observer):
        # The fast engine has no event loop to observe; asking for one
        # must be a loud error, never a silently observer-less run.
        with pytest.raises(ConfigError, match=observer):
            run_simulation(mcf_program, named_config("orig"),
                           SimParams(scale=SCALE), engine="fast",
                           **{observer: object()})

    def test_sanitize_env_raises_like_kwarg_observers(self, mcf_program,
                                                      monkeypatch):
        # One policy for every event-level observer: the env-derived
        # sanitizer raises the same ConfigError as explicit kwargs
        # (historically it warned and silently fell back to oracle).
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        cfg = named_config("wth-wp")
        params = SimParams(scale=SCALE)
        with pytest.raises(ConfigError, match="REPRO_SANITIZE"):
            run_simulation(mcf_program, cfg, params, engine="fast")
        monkeypatch.delenv("REPRO_SANITIZE")
        # With the observer gone the fast engine runs again.
        run_simulation(mcf_program, cfg, params, engine="fast")

    def test_policy_message_names_escape_hatch(self, mcf_program):
        with pytest.raises(ConfigError, match="--engine oracle"):
            run_simulation(mcf_program, named_config("orig"),
                           SimParams(scale=SCALE), engine="fast",
                           tracer=object())

    def test_profiler_supported_on_fast(self, mcf_program):
        profiler = HostProfiler()
        run_simulation(mcf_program, named_config("orig"),
                       SimParams(scale=SCALE), engine="fast",
                       profiler=profiler)
        snap = profiler.snapshot(1.0)
        assert "engine.fast" in snap

    def test_default_engine_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert default_engine() == "oracle"
        monkeypatch.setenv("REPRO_ENGINE", "fast")
        assert default_engine() == "fast"
        monkeypatch.setenv("REPRO_ENGINE", " Oracle ")
        assert default_engine() == "oracle"
        monkeypatch.setenv("REPRO_ENGINE", "turbo")
        with pytest.raises(ConfigError, match="REPRO_ENGINE"):
            default_engine()


# ---------------------------------------------------------------------------
# bus_update under every sidecar policy, both engines
# ---------------------------------------------------------------------------

POLICY_CONFIGS = (
    ("orig", SidecarKind.NONE),
    ("vc", SidecarKind.VICTIM),
    ("wth-wp-wec", SidecarKind.WEC),
    ("nlp", SidecarKind.PREFETCH),
    ("stream-pf", SidecarKind.STREAM),
)


class TestBusUpdate:
    """The coherence hook answers "does this TU cache the block?".

    Presence must include sidecar-resident blocks (whatever their
    flags — a WRONG-flagged WEC block is still a valid copy under the
    update protocol) and must bump ``bus_updates`` only on application.
    """

    @staticmethod
    def _pair(config_name):
        cfg = named_config(config_name)
        params = SimParams(scale=SCALE)
        oracle = TUMemSystem(
            0, cfg.tu.l1d, cfg.tu.l1i, cfg.tu.sidecar, SharedL2(cfg.mem),
            prefetch_late_cycles=params.prefetch_late_cycles,
            prefetch_late_far_cycles=params.prefetch_late_far_cycles,
        )
        fast = _FastMachine(cfg, params).tus[0]
        return oracle, fast

    @staticmethod
    def _agree(oracle, fast, addr):
        got_o = oracle.bus_update(addr)
        got_f = fast.bus_update(addr)
        assert got_o == got_f
        assert oracle.stats["bus_updates"] == fast.m["bus_updates"]
        return got_o

    @pytest.mark.parametrize("config_name,kind", POLICY_CONFIGS)
    def test_dirty_l1_block_applies(self, config_name, kind):
        oracle, fast = self._pair(config_name)
        block, bits = 5, oracle.l1d.block_bits
        oracle.l1d.insert(block, DIRTY)
        fast.l1d_sets[block & fast.l1d_mask][block] = DIRTY
        assert self._agree(oracle, fast, block << bits) is True
        assert oracle.stats["bus_updates"] == 1

    @pytest.mark.parametrize("config_name,kind", POLICY_CONFIGS)
    def test_wrong_sidecar_block_applies(self, config_name, kind):
        if kind is SidecarKind.NONE:
            pytest.skip("no sidecar under the plain policy")
        oracle, fast = self._pair(config_name)
        block, bits = 9, oracle.l1d.block_bits
        oracle.sidecar.insert(block, WRONG)
        fast.side[block] = WRONG
        assert self._agree(oracle, fast, block << bits) is True
        assert oracle.stats["bus_updates"] == 1

    @pytest.mark.parametrize("config_name,kind", POLICY_CONFIGS)
    def test_absent_block_is_a_miss(self, config_name, kind):
        oracle, fast = self._pair(config_name)
        assert self._agree(oracle, fast, 0xBEEF00) is False
        assert oracle.stats["bus_updates"] == 0


# ---------------------------------------------------------------------------
# Executor: no silent serial fallback
# ---------------------------------------------------------------------------

def _two_cells():
    params = SimParams(scale=SCALE)
    return [
        SweepCell("181.mcf", "orig", named_config("orig"), params),
        SweepCell("181.mcf", "vc", named_config("vc"), params),
    ]


class TestSerialFallback:
    def test_fork_unavailable_recorded_and_warned(self, monkeypatch, tmp_path):
        monkeypatch.setattr(executor, "_fork_available", lambda: False)
        manifest_path = tmp_path / "manifest.json"
        with pytest.warns(RuntimeWarning, match="fork-unavailable"):
            out = run_cells(_two_cells(), jobs=2, cache=False,
                            manifest_path=manifest_path)
        assert out.stats.serial_fallback == "fork-unavailable"
        assert out.stats.jobs_used == 1
        assert len(out.results) == 2
        manifest = json.loads(manifest_path.read_text())
        assert manifest["serial_fallback"] == "fork-unavailable"

    def test_single_cell_fallback_reason(self):
        with pytest.warns(RuntimeWarning, match="single-cell"):
            out = run_cells(_two_cells()[:1], jobs=4, cache=False)
        assert out.stats.serial_fallback == "single-cell"

    def test_serial_run_has_no_fallback_marker(self):
        out = run_cells(_two_cells(), jobs=1, cache=False)
        assert out.stats.serial_fallback is None
        assert out.stats.jobs_used == 1

    def test_parallel_path_matches_serial(self):
        serial = run_cells(_two_cells(), jobs=1, cache=False)
        parallel = run_cells(_two_cells(), jobs=2, cache=False)
        assert parallel.stats.serial_fallback is None
        assert parallel.stats.jobs_used == 2
        for key, result in serial.results.items():
            assert parallel.results[key].to_dict() == result.to_dict()


# ---------------------------------------------------------------------------
# Perf ledger: sub-resolution walls and engine provenance
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def tiny_result(mcf_program):
    return run_simulation(mcf_program, named_config("orig"),
                          SimParams(scale=SCALE), engine="fast")


class TestPerfRecord:
    def test_zero_wall_clamps_rates(self, tiny_result):
        rec = PerfRecord.from_result(tiny_result, wall_s=0.0)
        assert rec.host["wall_s"] == 0.0  # raw measurement preserved
        assert rec.host["wall_clamped"] == 1.0
        assert rec.host["events_per_sec"] == pytest.approx(
            tiny_result.instructions / WALL_EPSILON_S
        )
        assert rec.host["cycles_per_sec"] == pytest.approx(
            tiny_result.total_cycles / WALL_EPSILON_S
        )

    def test_normal_wall_unclamped(self, tiny_result):
        rec = PerfRecord.from_result(tiny_result, wall_s=0.25)
        assert "wall_clamped" not in rec.host
        assert rec.host["events_per_sec"] == pytest.approx(
            tiny_result.instructions / 0.25
        )

    def test_engine_provenance_stamped(self, tiny_result):
        assert PerfRecord.from_result(
            tiny_result, wall_s=0.1, engine="fast"
        ).provenance["engine"] == "fast"
        # Pre-engine ledgers defaulted to the oracle; an empty stamp
        # must read back the same way.
        assert PerfRecord.from_result(
            tiny_result, wall_s=0.1
        ).provenance["engine"] == "oracle"


# ---------------------------------------------------------------------------
# Shared cache geometry
# ---------------------------------------------------------------------------

class TestLayoutGeometry:
    @pytest.mark.parametrize("config_name", ["orig", "wth-wp-wec", "stream-pf"])
    def test_matches_oracle_cache_arrays(self, config_name):
        for cache_cfg in (named_config(config_name).tu.l1d,
                          named_config(config_name).tu.l1i,
                          named_config(config_name).mem.l2):
            cache = SetAssocCache(cache_cfg)
            geom = geometry_of(cache_cfg)
            assert geom.n_sets == cache.n_sets
            assert geom.assoc == cache.assoc
            assert geom.block_bits == cache.block_bits
            assert geom.set_mask == cache.n_sets - 1

    def test_block_and_set_math(self):
        geom = geometry_of(named_config("orig").tu.l1d)
        byte_addr = (geom.n_sets + 3) << geom.block_bits
        block = geom.block_of(byte_addr)
        assert block == geom.n_sets + 3
        assert geom.set_index(block) == 3
