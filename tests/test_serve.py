"""Tests for the sweep service (:mod:`repro.serve`).

Four layers, cheapest first:

* **Wire** — spec/cell-request round-trips, and rejection of every
  malformed-payload class with a ``WireError`` naming the field.
* **Queue** — dedup accounting (cache / in-flight / run), event
  sequencing, and the deterministic retry path (a requeued task
  completing on a "surviving worker").
* **Worker** — :func:`repro.sim.executor.run_cell_request` resolving
  cells (run, cache, error) and stamping job/tenant provenance into the
  perf ledger.
* **Service** — a real server on a background thread with real worker
  subprocesses: submit → stream → results bit-identical to a local
  ``run_grid``; resubmit served from cache; malformed submits answered
  with structured 4xx while the server keeps serving; a worker SIGKILLed
  mid-job replaced and the job still completing; a client resuming its
  event stream from ``?since=<seq>`` after a dropped connection.

The integration tests spawn subprocesses and bind sockets — they are
the slowest in the suite but still sized for tier-1 (tiny scale, few
cells).
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import time

import pytest

from repro.common.config import SimParams
from repro.common.errors import ServeError, WireError
from repro.serve.client import ServeClient
from repro.serve.queue import JobQueue
from repro.serve.server import ServerThread
from repro.serve.wire import (
    SERVE_SCHEMA_VERSION,
    SweepSpec,
    decode_cell_request,
    decode_config,
    encode_cell_request,
    encode_dataclass,
)
from repro.serve.worker import handle_line
from repro.sim.executor import DiskCache, run_cell_request
from repro.sim.sweep import run_grid
from repro.sta.configs import named_config

TINY = SimParams(seed=7, scale=2e-5, warmup_invocations=0)


@pytest.fixture(autouse=True)
def _isolated_serve_env(monkeypatch):
    """Strip ambient repro env knobs (workers inherit ``os.environ``).

    ``REPRO_SANITIZE=1`` (the CI sanitize leg) would make every
    fast-engine cell raise the observer-policy ConfigError by design —
    these tests pin their engines explicitly, so the process-wide knob
    must not leak in.  The perf/cache knobs are stripped so tests only
    ever touch their own tmp dirs.
    """
    for var in ("REPRO_SANITIZE", "REPRO_PERF_DIR", "REPRO_CACHE_DIR",
                "REPRO_CACHE_MAX_MB", "REPRO_ENGINE"):
        monkeypatch.delenv(var, raising=False)


def make_spec(benchmarks=("175.vpr",), labels=("orig", "vc"),
              engine="fast", tenant="default", params=TINY):
    return SweepSpec(
        benchmarks=tuple(benchmarks),
        configs=tuple((name, named_config(name)) for name in labels),
        params=params,
        engine=engine,
        tenant=tenant,
    )


class TestWire:
    def test_spec_roundtrip_is_identity(self):
        spec = make_spec(benchmarks=("175.vpr", "164.gzip"),
                         labels=("orig", "wth-wp-wec"), tenant="ci")
        wire = json.loads(json.dumps(spec.to_wire()))
        assert SweepSpec.from_wire(wire) == spec

    def test_decoded_spec_fingerprints_identically(self):
        # The dedup guarantee: a spec that crosses the wire must produce
        # the same cache keys as the client's original objects.
        spec = make_spec()
        decoded = SweepSpec.from_wire(json.loads(json.dumps(spec.to_wire())))
        assert ([c.key() for c in decoded.cells()]
                == [c.key() for c in spec.cells()])

    def test_cells_in_local_grid_order(self):
        spec = make_spec(benchmarks=("175.vpr", "164.gzip"),
                         labels=("orig", "vc"))
        assert [(c.benchmark, c.label) for c in spec.cells()] == [
            ("175.vpr", "orig"), ("175.vpr", "vc"),
            ("164.gzip", "orig"), ("164.gzip", "vc"),
        ]

    @pytest.mark.parametrize("mutate, message", [
        (lambda w: w.pop("benchmarks"), "missing required field"),
        (lambda w: w.update(schema=99), "unsupported version"),
        (lambda w: w.update(benchmarks=[]), "empty benchmark"),
        (lambda w: w.update(benchmarks=["nosuch.bench"]), "unknown benchmark"),
        (lambda w: w.update(configs=[]), "empty configuration"),
        (lambda w: w.update(engine="turbo"), "unknown engine"),
        (lambda w: w.update(tenant=""), "non-empty"),
    ])
    def test_malformed_spec_raises_wire_error(self, mutate, message):
        wire = make_spec().to_wire()
        mutate(wire)
        with pytest.raises(WireError, match=message):
            SweepSpec.from_wire(wire)

    def test_duplicate_labels_rejected(self):
        wire = make_spec().to_wire()
        wire["configs"].append(dict(wire["configs"][0]))
        with pytest.raises(WireError, match="duplicate label"):
            SweepSpec.from_wire(wire)

    def test_unknown_class_rejected(self):
        # The decoder is a closed world, never a generic unpickler.
        wire = make_spec().to_wire()
        wire["params"]["__class__"] = "os.system"
        with pytest.raises(WireError, match="unknown dataclass"):
            SweepSpec.from_wire(wire)

    def test_unknown_field_rejected(self):
        wire = make_spec().to_wire()
        wire["params"]["not_a_knob"] = 1
        with pytest.raises(WireError, match="not_a_knob"):
            SweepSpec.from_wire(wire)

    def test_bad_enum_value_names_dotted_path(self):
        cfg = encode_dataclass(named_config("vc"))
        cfg["tu"]["sidecar"]["kind"] = "warp-drive"
        with pytest.raises(WireError, match="config.tu.sidecar.kind"):
            decode_config(cfg)

    def test_cell_request_roundtrip(self):
        spec = make_spec()
        cell = spec.cells()[0]
        wire = json.loads(json.dumps(encode_cell_request(
            request_id="r1", cell=cell, engine="fast",
            job_id="j0001", tenant="ci",
        )))
        req = decode_cell_request(wire)
        assert req.cell == cell
        assert req.key == cell.key()
        assert (req.engine, req.job_id, req.tenant) == ("fast", "j0001", "ci")


class TestQueue:
    def run_async(self, coro):
        return asyncio.run(coro)

    def test_cache_then_inflight_then_run(self, tmp_path):
        async def scenario():
            cache = DiskCache(tmp_path)
            queue = JobQueue(cache)
            spec = make_spec(labels=("orig", "vc"))

            job1 = await queue.submit(spec, "fast")
            assert job1.stats()["cache_hits"] == 0
            assert queue.tasks.qsize() == 2

            # Same grid again while job1 is in flight: no new tasks,
            # every cell subscribes to job1's computations.
            job2 = await queue.submit(spec, "fast")
            assert queue.tasks.qsize() == 2

            while not queue.tasks.empty():
                task = queue.tasks.get_nowait()
                result = {"benchmark": task.cell.benchmark, "cycles": 1}
                await queue.task_done(task, source="run", result=result,
                                      wall_s=0.5)
            assert job1.state == "done"
            assert job2.state == "done"
            assert job1.stats()["executed"] == 2
            assert job2.stats()["deduped"] == 2
            assert job2.results[0] == {"benchmark": "175.vpr", "cycles": 1}

        self.run_async(scenario())

    def test_retry_completes_job_deterministically(self, tmp_path):
        # The queue half of the worker-death story, with no racing
        # processes: a task requeued after a "death" still resolves its
        # job, and the retry is visible in events and attempt counts.
        async def scenario():
            queue = JobQueue(DiskCache(tmp_path))
            job = await queue.submit(make_spec(labels=("orig",)), "fast")
            task = queue.tasks.get_nowait()
            await queue.requeue(task)  # worker died mid-cell
            assert task.attempts == 1
            task = queue.tasks.get_nowait()  # picked up by a survivor
            await queue.task_done(task, source="run", result={"ok": 1},
                                  wall_s=0.1)
            assert job.state == "done"
            assert job.entries[0].attempts == 1
            kinds = [e["kind"] for e in job.events]
            assert kinds == ["cell-retried", "cell-done", "job-done"]

        self.run_async(scenario())

    def test_failed_task_fails_job_and_followers(self, tmp_path):
        async def scenario():
            queue = JobQueue(DiskCache(tmp_path))
            spec = make_spec(labels=("orig",))
            job1 = await queue.submit(spec, "fast")
            job2 = await queue.submit(spec, "fast")
            task = queue.tasks.get_nowait()
            await queue.task_failed(task, "boom")
            assert job1.state == "failed"
            assert job2.state == "failed"
            assert job2.entries[0].error == "boom"

        self.run_async(scenario())

    def test_events_are_sequence_numbered(self, tmp_path):
        async def scenario():
            queue = JobQueue(DiskCache(tmp_path))
            job = await queue.submit(make_spec(labels=("orig", "vc")), "fast")
            while not queue.tasks.empty():
                task = queue.tasks.get_nowait()
                await queue.task_done(task, "run", {"ok": 1}, 0.1)
            assert [e["seq"] for e in job.events] == [1, 2, 3]

        self.run_async(scenario())

    def test_unknown_job_raises(self, tmp_path):
        queue = JobQueue(DiskCache(tmp_path))
        with pytest.raises(ServeError, match="no such job"):
            queue.job("j9999")


class TestWorkerSide:
    def make_request(self, tmp_path, label="orig", **overrides):
        spec = make_spec(labels=(label,))
        wire = encode_cell_request(
            request_id="r1", cell=spec.cells()[0], engine="fast",
            job_id="j0001", tenant="ci", cache_dir=str(tmp_path),
        )
        wire.update(overrides)
        return wire

    def test_run_then_cache(self, tmp_path):
        request = self.make_request(tmp_path)
        first = run_cell_request(request)
        assert (first["status"], first["source"]) == ("ok", "run")
        again = run_cell_request(request)
        assert (again["status"], again["source"]) == ("ok", "cache")
        assert again["result"] == first["result"]

    def test_matches_local_run_grid(self, tmp_path):
        spec = make_spec(labels=("orig",))
        response = run_cell_request(self.make_request(tmp_path))
        local = run_grid({"orig": named_config("orig")},
                         benchmarks=["175.vpr"], params=TINY,
                         cache=False, engine="fast")
        assert response["result"] == local[("175.vpr", "orig")].to_dict()

    def test_undecodable_request_is_structured_error(self, tmp_path):
        response = run_cell_request({"kind": "cell-request", "schema": -1,
                                     "id": "r9"})
        assert response["status"] == "err"
        assert response["id"] == "r9"
        assert "unsupported version" in response["error"]

    def test_ledger_provenance_carries_job_and_tenant(self, tmp_path,
                                                      monkeypatch):
        monkeypatch.setenv("REPRO_PERF_DIR", str(tmp_path / "perf"))
        response = run_cell_request(
            self.make_request(tmp_path / "cache", job_id="j0042",
                              tenant="team-a"))
        assert response["status"] == "ok"
        lines = (tmp_path / "perf" / "ledger.jsonl").read_text().splitlines()
        record = json.loads(lines[-1])
        assert record["provenance"]["job_id"] == "j0042"
        assert record["provenance"]["tenant"] == "team-a"
        assert record["context"] == "serve.worker"

    def test_handle_line_ping_and_garbage(self):
        assert handle_line('{"kind": "ping"}')["kind"] == "pong"
        bad = handle_line("{not json")
        assert bad["status"] == "err"
        assert "not valid JSON" in bad["error"]


@pytest.fixture()
def server(tmp_path):
    with ServerThread(workers=2, cache_dir=str(tmp_path / "cache"),
                      engine="fast") as srv:
        yield srv


class TestService:
    def test_submit_stream_results_and_resubmit(self, server, tmp_path):
        client = ServeClient(port=server.port)
        spec = make_spec(benchmarks=("175.vpr", "164.gzip"),
                         labels=("orig", "vc"))
        summary = client.submit(spec)
        events = []
        status = client.wait(summary["job_id"], on_event=events.append)
        assert status["state"] == "done"
        assert status["executed"] == 4
        # Events: one per cell plus job-done, strictly sequenced.
        assert [e["seq"] for e in events] == list(range(1, len(events) + 1))
        assert events[-1]["kind"] == "job-done"

        # Bit-identity with an uncached local run of the same grid.
        grid = client.result_grid(summary["job_id"])
        local = run_grid(dict(spec.configs), list(spec.benchmarks),
                        spec.params, cache=False, engine="fast")
        assert set(grid) == set(local)
        assert all(grid[k].to_dict() == local[k].to_dict() for k in local)

        # Identical resubmit: every cell from the content-addressed cache.
        again = client.submit(spec)
        final = client.wait(again["job_id"])
        assert final["cache_hits"] == final["n_cells"] == 4
        assert final["executed"] == 0
        assert client.result_grid(again["job_id"]).keys() == grid.keys()

    def test_malformed_submits_get_4xx_server_survives(self, server):
        client = ServeClient(port=server.port)
        wire = make_spec().to_wire()
        wire["benchmarks"] = ["nosuch.bench"]
        with pytest.raises(ServeError, match="bad-spec"):
            client._request("POST", "/v1/jobs", body=wire)
        # A body that is not JSON at all: structured 400, kind bad-json.
        import http.client as hc
        conn = hc.HTTPConnection("127.0.0.1", server.port, timeout=10)
        conn.request("POST", "/v1/jobs", body="{definitely not json")
        resp = conn.getresponse()
        doc = json.loads(resp.read())
        conn.close()
        assert resp.status == 400
        assert doc["error"]["kind"] == "bad-json"
        with pytest.raises(ServeError, match="not-found"):
            client._request("GET", "/v1/nowhere")
        # After all that abuse the server still answers and still works.
        assert client.health()["ok"] is True
        job = client.submit(make_spec(labels=("orig",)))
        assert client.wait(job["job_id"])["state"] == "done"

    def test_results_before_done_is_409(self, server):
        client = ServeClient(port=server.port)
        job = client.submit(make_spec(labels=("orig", "vc", "nlp")))
        try:
            client.results(job["job_id"])
        except ServeError as exc:
            assert "not-finished" in str(exc) or "409" in str(exc)
        # Either it already finished (fast machine) or we saw the 409;
        # in both cases waiting must still converge.
        assert client.wait(job["job_id"])["state"] == "done"

    def test_worker_killed_mid_job_still_completes(self, tmp_path):
        # A bigger grid through ONE worker: SIGKILL it mid-job and the
        # server must respawn a replacement and finish every cell.
        with ServerThread(workers=1, cache_dir=str(tmp_path / "cache"),
                          engine="fast") as srv:
            client = ServeClient(port=srv.port)
            spec = make_spec(
                benchmarks=("175.vpr", "164.gzip", "181.mcf"),
                labels=("orig", "vc"),
                params=SimParams(seed=7, scale=1e-4),
            )
            job = client.submit(spec)
            victim = client.health()["workers"][0]["pid"]
            # Let it get its teeth into a cell, then kill it.
            time.sleep(0.8)
            killed = client.job(job["job_id"])["state"] == "running"
            if killed:
                os.kill(victim, signal.SIGKILL)
            status = client.wait(job["job_id"])
            assert status["state"] == "done"
            assert status["resolved"] == status["n_cells"] == 6
            grid = client.result_grid(job["job_id"])
            assert len(grid) == 6
            # The replacement worker is alive and is a different process.
            health = client.health()
            assert any(w["alive"] for w in health["workers"])
            if killed:
                # The death is visible fleet-wide: health, /v1/metrics,
                # and the job's own stats all count the respawn/retry.
                from repro.obs.telemetry import (
                    M_CELL_RETRIES,
                    M_WORKER_RESPAWNS,
                    snapshot_value,
                )

                assert health["respawns"] >= 1
                snap = client.metrics()
                assert snapshot_value(snap, M_WORKER_RESPAWNS) >= 1
                assert snapshot_value(snap, M_CELL_RETRIES) >= 1
                assert status["respawns"] >= 1
                assert status["retries"] >= 1

    def test_event_stream_resumes_from_since(self, server):
        client = ServeClient(port=server.port)
        job = client.submit(make_spec(labels=("orig", "vc")))
        client.wait(job["job_id"])
        # First connection: read only the first event, then drop it.
        stream = client.events(job["job_id"], since=0)
        first = next(stream)
        stream.close()  # simulated mid-stream disconnect
        assert first["seq"] == 1
        # Reconnect with since=<last seen>: exactly the suffix replays.
        rest = list(client.events(job["job_id"], since=first["seq"]))
        assert [e["seq"] for e in rest] == list(
            range(2, 2 + len(rest)))
        assert rest[-1]["kind"] == "job-done"
        # No duplication: union is exactly the full log.
        full = list(client.events(job["job_id"], since=0))
        assert [first] + rest == full

    def test_wait_reconnects_after_transport_error(self, server):
        client = ServeClient(port=server.port)
        job = client.submit(make_spec(labels=("orig", "vc")))
        real_events = client.events
        calls = {"n": 0}

        def flaky_events(job_id, since=0):
            calls["n"] += 1
            stream = real_events(job_id, since=since)
            if calls["n"] == 1:
                yield next(stream)
                stream.close()
                raise ConnectionResetError("simulated drop")
            yield from stream

        client.events = flaky_events
        seen = []
        status = client.wait(job["job_id"], on_event=seen.append,
                             reconnect_delay_s=0.01)
        assert status["state"] == "done"
        assert calls["n"] >= 2  # it did reconnect
        # Exactly-once delivery across the reconnect.
        seqs = [e["seq"] for e in seen]
        assert seqs == sorted(set(seqs)) == list(range(1, len(seqs) + 1))

    def test_wait_gives_up_when_server_unreachable(self):
        client = ServeClient(port=1, timeout=0.2)  # nothing listens here
        with pytest.raises(ServeError, match="reconnects"):
            client.wait("j0001", max_reconnects=2, reconnect_delay_s=0.01)

    def test_metrics_under_concurrent_jobs(self, server):
        from repro.obs.telemetry import (
            M_CELL_LATENCY,
            M_CELLS_TOTAL,
            M_JOBS_TOTAL,
            snapshot_hist,
            snapshot_total,
            snapshot_value,
        )

        client = ServeClient(port=server.port)
        spec = make_spec(benchmarks=("175.vpr", "164.gzip"),
                         labels=("orig", "vc"))
        # Two identical grids in flight together: the overlap resolves
        # through the follower table or the cache, never a second run.
        first = client.submit(spec)
        second = client.submit(spec)
        client.wait(first["job_id"])
        client.wait(second["job_id"])

        snap = client.metrics()
        by_layer = {
            layer: snapshot_value(snap, M_CELLS_TOTAL, {"source": layer})
            for layer in ("cache", "dedup", "run", "failed")
        }
        # Per-layer counts sum to the total cell count of both jobs.
        assert sum(by_layer.values()) == snapshot_total(snap, M_CELLS_TOTAL) == 8
        assert by_layer["run"] == 4
        assert by_layer["failed"] == 0
        assert by_layer["cache"] + by_layer["dedup"] == 4
        assert snapshot_value(snap, M_JOBS_TOTAL, {"state": "submitted"}) == 2
        assert snapshot_value(snap, M_JOBS_TOTAL, {"state": "done"}) == 2
        # Executed cells landed in the latency histogram (nonzero
        # buckets: total count equals the run-layer count).
        count, total_s = snapshot_hist(snap, M_CELL_LATENCY)
        assert count == 4
        assert total_s > 0.0
        hist = snap["metrics"][M_CELL_LATENCY]
        assert any(sum(s["counts"]) > 0 for s in hist["series"])

    def test_metrics_prometheus_text(self, server):
        from repro.obs.telemetry import M_CELLS_TOTAL, M_WORKERS_ALIVE

        client = ServeClient(port=server.port)
        client.wait(client.submit(make_spec(labels=("orig",)))["job_id"])
        text = client.metrics_text()
        assert f"# TYPE {M_CELLS_TOTAL} counter" in text
        assert f'{M_CELLS_TOTAL}{{source="run"}} 1' in text
        assert f"{M_WORKERS_ALIVE} 2" in text

    def test_since_replay_exact_after_metrics_poll(self, server):
        # Scraping /v1/metrics between event reads must never disturb
        # the exactly-once ?since= replay contract.
        client = ServeClient(port=server.port)
        job = client.submit(make_spec(labels=("orig", "vc")))
        client.wait(job["job_id"])
        stream = client.events(job["job_id"], since=0)
        first = next(stream)
        stream.close()
        client.metrics()
        client.metrics_text()
        rest = list(client.events(job["job_id"], since=first["seq"]))
        seqs = [first["seq"]] + [e["seq"] for e in rest]
        assert seqs == list(range(1, len(seqs) + 1))
        assert rest[-1]["kind"] == "job-done"

    def test_job_stats_surface_retries_and_respawns(self, server):
        client = ServeClient(port=server.port)
        job = client.submit(make_spec(labels=("orig",)))
        status = client.wait(job["job_id"])
        # No worker died: both counters present and zero.
        assert status["retries"] == 0
        assert status["respawns"] == 0
        assert all("retries" in j and "respawns" in j
                   for j in client.jobs())
        assert "respawns" in client.health()

    def test_timeline_spans_executed_cells(self, server):
        client = ServeClient(port=server.port)
        job = client.submit(make_spec(labels=("orig", "vc")))
        status = client.wait(job["job_id"])
        doc = client.timeline()
        spans = doc["spans"]
        assert len(spans) == status["executed"]
        for span in spans:
            assert span["job_id"] == job["job_id"]
            assert span["worker"].startswith("w")
            assert span["end_s"] >= span["start_s"]
            assert span["source"] in ("run", "cache")
        assert doc["n_dropped"] == 0

    def test_structured_log_correlates_job_and_workers(self, tmp_path):
        log_path = tmp_path / "serve.jsonl"
        with ServerThread(workers=1, cache_dir=str(tmp_path / "cache"),
                          engine="fast", log_path=str(log_path)) as srv:
            client = ServeClient(port=srv.port)
            job = client.submit(make_spec(labels=("orig", "vc"),
                                          tenant="team-t"))
            client.wait(job["job_id"])
        records = [json.loads(l) for l in log_path.read_text().splitlines()]
        events = [r["event"] for r in records]
        assert "worker.spawned" in events
        assert "job.submitted" in events
        assert "job.done" in events
        resolved = [r for r in records if r["event"] == "cell.resolved"]
        assert len(resolved) == 2
        assert all(r["job_id"] == job["job_id"] for r in resolved)
        assert all(r["tenant"] == "team-t" for r in resolved)
        assert all(r["worker"] == "w1" or r["worker"].startswith("w")
                   for r in resolved)
        done = [r for r in records if r["event"] == "job.done"][0]
        assert done["state"] == "done"
        assert done["n_cells"] == 2
        # The worker subprocess wrote into the same file.
        worker_lines = [r for r in records if "worker_pid" in r]
        assert any(r["event"] == "worker.online" for r in worker_lines)
        assert any(r["event"] == "worker.cell" for r in worker_lines)

    def test_serve_top_once_renders_fleet_frame(self, server, capsys):
        from repro.cli import main

        client = ServeClient(port=server.port)
        client.wait(client.submit(make_spec(labels=("orig", "vc")))["job_id"])
        assert main(["serve", "top", "--port", str(server.port),
                     "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro serve top" in out
        assert "workers" in out
        assert "2 run" in out
        assert "1 submitted" in out

    def test_jobs_listing_includes_retries_and_respawns(self, server,
                                                        capsys):
        from repro.cli import main

        client = ServeClient(port=server.port)
        client.wait(client.submit(make_spec(labels=("orig",)))["job_id"])
        assert main(["jobs", "--port", str(server.port)]) == 0
        out = capsys.readouterr().out
        assert "retries" in out
        assert "respawns" in out

    def test_jobs_timeline_writes_perfetto_trace(self, server, tmp_path,
                                                 capsys):
        from repro.cli import main

        client = ServeClient(port=server.port)
        client.wait(client.submit(make_spec(labels=("orig",)))["job_id"])
        out_path = tmp_path / "svc.json"
        assert main(["jobs", "--port", str(server.port),
                     "--timeline", str(out_path)]) == 0
        doc = json.loads(out_path.read_text())
        assert doc["otherData"]["clock"] == "1 trace us = 1 host microsecond"
        assert any(e.get("ph") == "X" for e in doc["traceEvents"])

    def test_cache_stats_prints_eviction_totals(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["cache", "stats", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "evicted : 0 entr(y/ies)" in out

    def test_service_ledger_provenance(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PERF_DIR", str(tmp_path / "perf"))
        with ServerThread(workers=2, cache_dir=str(tmp_path / "cache"),
                          engine="fast") as srv:
            client = ServeClient(port=srv.port)
            job = client.submit(make_spec(labels=("orig", "vc"),
                                          tenant="team-b"))
            status = client.wait(job["job_id"])
            assert status["executed"] == 2
        lines = (tmp_path / "perf" / "ledger.jsonl").read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert len(records) == 2
        for record in records:
            assert record["provenance"]["job_id"] == job["job_id"]
            assert record["provenance"]["tenant"] == "team-b"
