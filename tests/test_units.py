"""Unit tests for size parsing, alignment and power-of-two helpers."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigError
from repro.common.units import (
    align_down,
    align_up,
    ceil_div,
    format_size,
    is_pow2,
    log2_exact,
    parse_size,
)


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("8K", 8192),
            ("8k", 8192),
            ("8KB", 8192),
            ("8KiB", 8192),
            ("512K", 512 * 1024),
            ("2M", 2 * 1024 * 1024),
            ("1G", 1024**3),
            ("64", 64),
            ("0", 0),
            ("1.5K", 1536),
        ],
    )
    def test_strings(self, text, expected):
        assert parse_size(text) == expected

    def test_int_passthrough(self):
        assert parse_size(4096) == 4096

    def test_negative_int_rejected(self):
        with pytest.raises(ConfigError):
            parse_size(-1)

    def test_bool_rejected(self):
        with pytest.raises(ConfigError):
            parse_size(True)

    @pytest.mark.parametrize("bad", ["", "K", "8Q", "8 K B", "1.2.3K", "-8K"])
    def test_garbage_rejected(self, bad):
        with pytest.raises(ConfigError):
            parse_size(bad)

    def test_fractional_bytes_rejected(self):
        with pytest.raises(ConfigError):
            parse_size("1.0001K")


class TestFormatSize:
    @pytest.mark.parametrize(
        "n,expected",
        [(8192, "8K"), (524288, "512K"), (64, "64B"), (1024**2, "1M"), (0, "0B"),
         (1024**3, "1G"), (1536, "1536B")],
    )
    def test_format(self, n, expected):
        assert format_size(n) == expected

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            format_size(-5)

    @given(st.integers(min_value=0, max_value=2**40))
    def test_roundtrip(self, n):
        assert parse_size(format_size(n)) == n


class TestPow2:
    def test_is_pow2(self):
        assert is_pow2(1) and is_pow2(64) and is_pow2(1 << 30)
        assert not is_pow2(0) and not is_pow2(-4) and not is_pow2(48)

    def test_log2_exact(self):
        assert log2_exact(64) == 6
        assert log2_exact(1) == 0
        with pytest.raises(ConfigError):
            log2_exact(48)

    @given(st.integers(min_value=0, max_value=62))
    def test_log2_roundtrip(self, e):
        assert log2_exact(1 << e) == e


class TestAlign:
    def test_align_down(self):
        assert align_down(130, 64) == 128
        assert align_down(128, 64) == 128
        assert align_down(63, 64) == 0

    def test_align_up(self):
        assert align_up(130, 64) == 192
        assert align_up(128, 64) == 128
        assert align_up(1, 64) == 64

    def test_bad_granule(self):
        with pytest.raises(ConfigError):
            align_down(100, 48)
        with pytest.raises(ConfigError):
            align_up(100, 0)

    @given(st.integers(min_value=0, max_value=2**40), st.sampled_from([1, 2, 64, 4096]))
    def test_align_invariants(self, addr, g):
        d, u = align_down(addr, g), align_up(addr, g)
        assert d <= addr <= u
        assert d % g == 0 and u % g == 0
        assert u - d in (0, g)


class TestCeilDiv:
    @pytest.mark.parametrize("a,b,expected", [(10, 3, 4), (9, 3, 3), (0, 5, 0), (1, 5, 1)])
    def test_values(self, a, b, expected):
        assert ceil_div(a, b) == expected

    def test_nonpositive_divisor(self):
        with pytest.raises(ConfigError):
            ceil_div(5, 0)

    @given(st.integers(min_value=0, max_value=10**9), st.integers(min_value=1, max_value=10**6))
    def test_matches_definition(self, a, b):
        assert ceil_div(a, b) == (a + b - 1) // b
