"""Tests for the mechanistic core timing model."""

from __future__ import annotations

import pytest

from repro.common.config import FuncUnitMix, SimParams, ThreadUnitConfig
from repro.common.errors import SimulationError
from repro.core.timing import STORE_STALL_WEIGHT, CoreTimingModel, IterationTiming
from repro.isa.encoding import StageSplit
from repro.isa.instructions import InstrClass, InstructionMix


def model(issue=8, rob=64, lsq=64, mlp_cap=4.0, **fu):
    cfg = ThreadUnitConfig(
        issue_width=issue, rob_size=rob, lsq_size=lsq,
        func_units=FuncUnitMix(**fu) if fu else FuncUnitMix(),
    )
    return CoreTimingModel(cfg, SimParams(mlp_cap=mlp_cap))


def mix(ialu=80, load=10, store=5, branch=5, fpmult=0):
    m = InstructionMix()
    m.add(InstrClass.IALU, ialu)
    m.add(InstrClass.LOAD, load)
    m.add(InstrClass.STORE, store)
    m.add(InstrClass.BRANCH, branch)
    m.add(InstrClass.FPMULT, fpmult)
    return m


class TestBaseCycles:
    def test_issue_limited(self):
        m = model(issue=8)
        # ILP 2 limits below the 8-wide issue.
        assert m.base_cycles(mix(), ilp=2.0) == pytest.approx(100 / 2)

    def test_width_limited(self):
        m = model(issue=4)
        assert m.base_cycles(mix(), ilp=16.0) == pytest.approx(100 / 4)

    def test_fu_throughput_binds(self):
        # 1 FP multiplier and 40 FP mults: at least 40 cycles.
        m = model(issue=8, int_alu=8, int_mult=4, fp_alu=8, fp_mult=1)
        heavy = mix(ialu=40, load=0, store=0, branch=0, fpmult=40)
        assert m.base_cycles(heavy, ilp=16.0) >= 40.0

    def test_empty_mix(self):
        assert model().base_cycles(InstructionMix(), ilp=2.0) == 0.0

    def test_nonpositive_ilp(self):
        with pytest.raises(SimulationError):
            model().base_cycles(mix(), ilp=0.0)


class TestMLP:
    def test_scales_with_rob(self):
        assert model(rob=16).mlp == pytest.approx(1.0)
        assert model(rob=32).mlp == pytest.approx(2.0)
        assert model(rob=64).mlp == pytest.approx(4.0)

    def test_capped(self):
        assert model(rob=128, mlp_cap=4.0).mlp == pytest.approx(4.0)

    def test_lsq_bounds(self):
        assert model(rob=64, lsq=16).mlp == pytest.approx(2.0)

    def test_floor_of_one(self):
        assert model(issue=1, rob=8, lsq=8).mlp == pytest.approx(1.0)


class TestIterationTiming:
    def test_stage_assembly(self):
        m = model(issue=8, rob=64)
        split = StageSplit(0.1, 0.1, 0.7, 0.1)
        t = m.iteration_timing(
            mix=mix(),
            ilp=4.0,
            stage_split=split,
            load_stall_sum=40.0,
            store_stall_sum=10.0,
            n_mispredicts=2,
            mispredict_penalty=7,
        )
        base = 100 / 4
        assert t.base_cycles == pytest.approx(base)
        assert t.continuation == pytest.approx(0.1 * base)
        assert t.mem_stall == pytest.approx(40.0 / 4.0)
        assert t.branch_stall == pytest.approx(14.0)
        assert t.store_stall == pytest.approx(10.0 * STORE_STALL_WEIGHT / 4.0)
        # Memory and branch stalls land in the computation stage.
        assert t.computation == pytest.approx(0.7 * base + 10.0 + 14.0)
        # Store-commit stall lands in write-back.
        assert t.writeback == pytest.approx(0.1 * base + t.store_stall)
        assert t.total == pytest.approx(
            t.continuation + t.tsag + t.computation + t.writeback
        )

    def test_ifetch_stall_included(self):
        m = model()
        t = m.iteration_timing(
            mix=mix(), ilp=4.0, stage_split=StageSplit(),
            load_stall_sum=0, store_stall_sum=0,
            n_mispredicts=0, mispredict_penalty=7,
            ifetch_stall_sum=33.0,
        )
        assert t.ifetch_stall == 33.0
        assert t.computation >= 33.0

    def test_more_stall_more_total(self):
        m = model()
        kwargs = dict(mix=mix(), ilp=4.0, stage_split=StageSplit(),
                      n_mispredicts=0, mispredict_penalty=7, store_stall_sum=0)
        low = m.iteration_timing(load_stall_sum=10.0, **kwargs)
        high = m.iteration_timing(load_stall_sum=1000.0, **kwargs)
        assert high.total > low.total

    def test_wrong_path_load_count_recorded(self):
        m = model()
        t = m.iteration_timing(
            mix=mix(), ilp=4.0, stage_split=StageSplit(),
            load_stall_sum=0, store_stall_sum=0,
            n_mispredicts=1, mispredict_penalty=7,
            n_wrong_path_loads=5,
        )
        assert t.n_wrong_path_loads == 5
        assert t.n_mispredicts == 1
