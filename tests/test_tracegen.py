"""Tests for dynamic trace generation and wrong-execution synthesis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.rng import StreamFactory
from repro.isa.cfg import BlockSpec, BranchSpec, IterationCFG, MemSlot
from repro.workloads.patterns import RandomPattern, SequentialPattern
from repro.workloads.program import (
    ParallelRegionSpec,
    SequentialRegionSpec,
    WrongExecProfile,
)
from repro.workloads.tracegen import TraceGenerator, code_base_for


def make_region(p_convergent=1.0, wp_mean=4.0, wth_fraction=1.0):
    cfg = IterationCFG(
        entry="a",
        blocks=[
            BlockSpec(
                "a",
                20,
                mem_slots=(MemSlot("stream"), MemSlot("stream"), MemSlot("tab")),
                branch=BranchSpec(0.6, "b", "b", noise=0.2),
            ),
            BlockSpec(
                "b",
                15,
                mem_slots=(
                    MemSlot("stream"),
                    MemSlot("tab"),
                    MemSlot("out", is_store=True, is_target_store=True),
                ),
            ),
        ],
    )
    patterns = {
        "stream": SequentialPattern("stream", 0x10000, 64 * 1024, stride=8,
                                    per_iter=3, stagger=False),
        "tab": RandomPattern("tab", 0x100000, 8 * 1024, stagger=False),
        "out": SequentialPattern("out", 0x200000, 8 * 1024, stride=8,
                                 per_iter=1, stagger=False),
        "poll": RandomPattern("poll", 0x300000, 8 * 1024, stagger=False),
    }
    return ParallelRegionSpec(
        name="test.region",
        cfg=cfg,
        patterns=patterns,
        iters_per_invocation=16,
        pollution_pattern="poll",
        wrong_exec=WrongExecProfile(
            wp_mean_loads=wp_mean, wp_max_loads=8, p_convergent=p_convergent,
            wp_lookahead=8, wth_fraction=wth_fraction, wth_max_iters=1,
        ),
    )


def make_seq_region():
    cfg = IterationCFG(
        entry="a",
        blocks=[BlockSpec("a", 20, mem_slots=(MemSlot("stream"), MemSlot("stream")))],
    )
    return SequentialRegionSpec(
        name="test.seq",
        cfg=cfg,
        patterns={
            "stream": SequentialPattern("stream", 0, 64 * 1024, stride=8,
                                        per_iter=2, stagger=False)
        },
        chunks_per_invocation=8,
    )


@pytest.fixture
def tg():
    return TraceGenerator(StreamFactory(11))


class TestDeterminism:
    def test_same_iteration_same_trace(self, tg):
        region = make_region()
        t1 = tg.iteration_trace(region, 5)
        t2 = tg.iteration_trace(region, 5)
        assert np.array_equal(t1.load_addrs, t2.load_addrs)
        assert np.array_equal(t1.branch_taken, t2.branch_taken)

    def test_independent_of_generation_order(self):
        """The workload must be identical across machine configurations
        regardless of how many other traces were generated in between."""
        region = make_region()
        a = TraceGenerator(StreamFactory(11))
        for i in range(10):
            a.iteration_trace(region, i)
        t_after = a.iteration_trace(region, 42)
        b = TraceGenerator(StreamFactory(11))
        t_direct = b.iteration_trace(region, 42)
        assert np.array_equal(t_after.load_addrs, t_direct.load_addrs)

    def test_different_iterations_differ(self, tg):
        region = make_region()
        t1 = tg.iteration_trace(region, 0)
        t2 = tg.iteration_trace(region, 1)
        assert not np.array_equal(t1.load_addrs, t2.load_addrs)

    def test_stage_split_propagates(self, tg):
        region = make_region()
        t = tg.iteration_trace(region, 0)
        assert t.stage_split == region.stage_split
        assert t.n_forward_values == region.n_forward_values


class TestWrongPath:
    def test_convergent_episode_targets_upcoming_loads(self, tg):
        region = make_region(p_convergent=1.0)
        trace = tg.iteration_trace(region, 3)
        addrs = tg.wrong_path_addrs(region, trace, 0, 3)
        future = set(int(a) for a in trace.load_addrs)
        assert addrs, "expected some wrong-path loads"
        assert all(a in future for a in addrs)

    def test_convergent_loads_are_consecutive(self, tg):
        region = make_region(p_convergent=1.0, wp_mean=6.0)
        trace = tg.iteration_trace(region, 3)
        addrs = tg.wrong_path_addrs(region, trace, 0, 3)
        if len(addrs) >= 2:
            loads = [int(a) for a in trace.load_addrs]
            idxs = [loads.index(a) for a in addrs]
            assert idxs == list(range(idxs[0], idxs[0] + len(idxs)))

    def test_divergent_episode_uses_pollution(self, tg):
        region = make_region(p_convergent=0.0)
        trace = tg.iteration_trace(region, 3)
        poll = region.patterns["poll"]
        addrs = tg.wrong_path_addrs(region, trace, 0, 3)
        assert addrs
        assert all(poll.base <= a < poll.base + poll.size for a in addrs)

    def test_future_loads_extend_pool(self, tg):
        region = make_region(p_convergent=1.0, wp_mean=8.0)
        trace = tg.iteration_trace(region, 3)
        ext = np.array([0xABCD00, 0xABCD40], dtype=np.int64)
        # Use the LAST branch so the intra-trace pool is nearly empty.
        last = trace.n_branches - 1
        found_ext = False
        for trial in range(40):
            addrs = tg.wrong_path_addrs(region, trace, last, 100 + trial,
                                        future_loads=ext)
            if any(a in (0xABCD00, 0xABCD40) for a in addrs):
                found_ext = True
                break
        assert found_ext, "extended pool never reached"

    def test_zero_mean_disables(self, tg):
        region = make_region(wp_mean=0.0)
        trace = tg.iteration_trace(region, 0)
        assert tg.wrong_path_addrs(region, trace, 0, 0) == []

    def test_deterministic_per_branch(self, tg):
        region = make_region()
        trace = tg.iteration_trace(region, 2)
        a = tg.wrong_path_addrs(region, trace, 0, 2)
        b = tg.wrong_path_addrs(region, trace, 0, 2)
        assert a == b


class TestWrongThread:
    def test_extrapolation_matches_real_future_iteration(self, tg):
        """The heart of wrong-thread prefetching: a wrong thread's loads
        are exactly the loads the real future iteration would issue."""
        region = make_region(wth_fraction=1.0)
        wth = tg.wrong_thread_addrs(region, 99)
        real = tg.iteration_trace(region, 99).load_addrs
        assert np.array_equal(wth, real)

    def test_fraction_truncates(self, tg):
        region = make_region(wth_fraction=0.5)
        wth = tg.wrong_thread_addrs(region, 50)
        real = tg.iteration_trace(region, 50)
        assert len(wth) == round(real.n_loads * 0.5)
        assert np.array_equal(wth, real.load_addrs[: len(wth)])

    def test_zero_fraction(self, tg):
        region = make_region(wth_fraction=0.0)
        assert len(tg.wrong_thread_addrs(region, 0)) == 0


class TestSequentialAndIFetch:
    def test_chunk_trace_cached(self, tg):
        region = make_seq_region()
        t1 = tg.chunk_trace(region, 4)
        t2 = tg.chunk_trace(region, 4)
        assert t1 is t2  # LRU cache returns the same object

    def test_chunk_cache_bounded(self, tg):
        region = make_seq_region()
        for c in range(50):
            tg.chunk_trace(region, c)
        assert len(tg._chunk_cache) <= TraceGenerator._CACHE_SIZE

    def test_ifetch_blocks_cycle_code_footprint(self, tg):
        region = make_region()
        blocks = tg.ifetch_blocks(region, n_instr=3200)
        base = code_base_for(region.name)
        assert np.all(blocks >= base)
        assert np.all(blocks < base + region.code_footprint)
        assert len(blocks) == 3200 // 16

    def test_code_bases_distinct_per_region(self):
        assert code_base_for("a") != code_base_for("b")
        assert code_base_for("a") >= (1 << 40)  # above the data heap

    def test_estimate_iteration_cost(self, tg):
        region = make_region()
        est = tg.estimate_iteration_cost(region, n_samples=64)
        # Body is 20 (+branch) or 20+15+branch: expectation in between.
        assert 21 <= est <= 36
