"""Tests for the sweep execution engine (:mod:`repro.sim.executor`).

Covers the three load-bearing guarantees:

* parallel fan-out produces results identical to the serial path;
* a cold-cache run followed by a warm-cache run returns identical
  ``SimResult``s with zero simulations executed;
* a cell that raises in a worker reports its grid key and does not
  lose the other cells.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro import SimParams, named_config
from repro.common.errors import SweepError
from repro.sim.executor import (
    DiskCache,
    SweepCell,
    cell_key,
    code_version_token,
    config_fingerprint,
    run_cell,
    run_cells,
)
from repro.sim.results import SimResult
from repro.sim.sweep import benchmarks_of, labels_of, run_grid

TINY = SimParams(seed=7, scale=2e-5, warmup_invocations=0)

BENCHES = ["175.vpr", "164.gzip"]
CONFIG_LABELS = ["orig", "vc", "nlp"]


def make_cells(params=TINY, benches=BENCHES, labels=CONFIG_LABELS):
    return [
        SweepCell(b, name, named_config(name), params)
        for b in benches
        for name in labels
    ]


class TestFingerprints:
    def test_stable(self):
        cfg = named_config("orig")
        assert config_fingerprint(cfg) == config_fingerprint(cfg)

    def test_covers_every_field(self):
        # The historical hand-maintained key omitted these knobs; the
        # dataclass-derived fingerprint must distinguish all of them.
        base = named_config("orig")
        variants = [
            dataclasses.replace(
                base, mem=dataclasses.replace(base.mem, memory_latency=300)
            ),
            dataclasses.replace(
                base,
                mem=dataclasses.replace(
                    base.mem,
                    l2=dataclasses.replace(base.mem.l2, block_size=256),
                ),
            ),
            dataclasses.replace(
                base,
                mem=dataclasses.replace(
                    base.mem,
                    l2=dataclasses.replace(base.mem.l2, hit_latency=20),
                ),
            ),
            dataclasses.replace(
                base, tu=dataclasses.replace(base.tu, mem_ports=4)
            ),
            dataclasses.replace(base, fork_delay=9),
        ]
        prints = {config_fingerprint(v) for v in variants}
        assert len(prints) == len(variants)
        assert config_fingerprint(base) not in prints

    def test_cell_key_covers_benchmark_and_params(self):
        cfg = named_config("orig")
        k = cell_key("175.vpr", cfg, TINY)
        assert k != cell_key("164.gzip", cfg, TINY)
        assert k != cell_key("175.vpr", cfg, dataclasses.replace(TINY, seed=8))
        assert k != cell_key("175.vpr", cfg, dataclasses.replace(TINY, scale=3e-5))

    def test_code_token_stable_within_process(self):
        assert code_version_token() == code_version_token()
        assert len(code_version_token()) == 16


class TestDiskCache:
    def test_roundtrip(self, tmp_path):
        cache = DiskCache(tmp_path)
        result = run_cell("175.vpr", named_config("orig"), TINY, cache=False)
        cache.put("ab" + "0" * 62, result)
        assert cache.get("ab" + "0" * 62) == result
        assert len(cache) == 1

    def test_miss_and_corrupt_entry(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = "cd" + "1" * 62
        assert cache.get(key) is None
        path = cache._path(key)
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        assert cache.get(key) is None  # corrupt -> miss
        assert not path.exists()  # ... and dropped

    def test_unwritable_root_degrades_gracefully(self, tmp_path):
        # A misconfigured cache dir must not fail the sweep: put() warns
        # once and the run continues uncached.
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("file, not a directory")
        cache = DiskCache(blocker / "sub")
        result = run_cell("175.vpr", named_config("orig"), TINY, cache=False)
        with pytest.warns(RuntimeWarning, match="not writable"):
            cache.put("ab" + "3" * 62, result)
        cache.put("ab" + "4" * 62, result)  # second write: silent no-op
        assert cache.get("ab" + "3" * 62) is None

    def test_clear(self, tmp_path):
        cache = DiskCache(tmp_path)
        result = run_cell("175.vpr", named_config("orig"), TINY, cache=False)
        cache.put("ef" + "2" * 62, result)
        assert cache.clear() == 1
        assert len(cache) == 0


class TestParallelEqualsSerial:
    def test_grid_results_identical(self, tmp_path):
        serial = run_cells(make_cells(), jobs=1, cache=False)
        parallel = run_cells(make_cells(), jobs=4, cache=False)
        assert serial.results == parallel.results
        assert len(serial.results) == len(BENCHES) * len(CONFIG_LABELS)
        assert parallel.stats.executed == len(BENCHES) * len(CONFIG_LABELS)

    def test_run_grid_jobs_param_preserves_order(self, tmp_path):
        configs = {name: named_config(name) for name in CONFIG_LABELS}
        grid = run_grid(
            configs, benchmarks=BENCHES, params=TINY,
            jobs=4, cache_dir=tmp_path,
        )
        assert benchmarks_of(grid) == BENCHES
        assert labels_of(grid) == CONFIG_LABELS

    def test_progress_called_once_per_cell_parallel(self, tmp_path):
        calls = []
        run_cells(
            make_cells(), jobs=4, cache=False,
            progress=lambda b, l: calls.append((b, l)),
        )
        assert sorted(calls) == sorted(c.grid_key for c in make_cells())


class TestPersistentCache:
    def test_cold_then_warm(self, tmp_path):
        cold = run_cells(make_cells(), cache_dir=tmp_path)
        assert cold.stats.executed == len(BENCHES) * len(CONFIG_LABELS)
        assert cold.stats.cache_hits == 0

        warm = run_cells(make_cells(), cache_dir=tmp_path)
        assert warm.stats.executed == 0
        assert warm.stats.cache_hits == len(BENCHES) * len(CONFIG_LABELS)
        assert warm.results == cold.results
        assert all(isinstance(r, SimResult) for r in warm.results.values())

    def test_warm_hits_in_parallel_mode_too(self, tmp_path):
        run_cells(make_cells(), cache_dir=tmp_path)
        warm = run_cells(make_cells(), jobs=4, cache_dir=tmp_path)
        assert warm.stats.executed == 0

    def test_param_change_misses(self, tmp_path):
        run_cells(make_cells(), cache_dir=tmp_path)
        other = dataclasses.replace(TINY, seed=9)
        again = run_cells(make_cells(params=other), cache_dir=tmp_path)
        assert again.stats.cache_hits == 0

    def test_cache_false_never_touches_disk(self, tmp_path):
        outcome = run_cells(make_cells(), cache=False, cache_dir=tmp_path)
        assert outcome.stats.cache_root is None
        assert len(DiskCache(tmp_path)) == 0

    def test_manifest(self, tmp_path):
        manifest_path = tmp_path / "runs" / "manifest.json"
        run_cells(make_cells(), cache_dir=tmp_path, manifest_path=manifest_path)
        data = json.loads(manifest_path.read_text())
        assert data["n_cells"] == len(BENCHES) * len(CONFIG_LABELS)
        assert data["executed"] == data["n_cells"]
        assert len(data["cells"]) == data["n_cells"]
        assert all(c["wall_s"] >= 0 for c in data["cells"])
        assert data["failures"] == []


class TestFailureSurfacing:
    def bad_cells(self):
        return make_cells() + [
            SweepCell("nosuch.bench", "orig", named_config("orig"), TINY)
        ]

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_failing_cell_reports_key_and_keeps_others(self, tmp_path, jobs):
        with pytest.raises(SweepError) as excinfo:
            run_cells(self.bad_cells(), jobs=jobs, cache_dir=tmp_path)
        err = excinfo.value
        assert "(nosuch.bench, orig)" in str(err)
        assert len(err.failures) == 1
        assert err.failures[0].benchmark == "nosuch.bench"
        # Every healthy cell still completed and is retrievable.
        assert len(err.outcome.results) == len(BENCHES) * len(CONFIG_LABELS)
        assert err.outcome.stats.failed == 1

    def test_non_strict_returns_partial_outcome(self, tmp_path):
        outcome = run_cells(self.bad_cells(), cache=False, strict=False)
        assert len(outcome.results) == len(BENCHES) * len(CONFIG_LABELS)
        assert outcome.stats.failed == 1
        assert outcome.stats.failures[0].label == "orig"


class TestRunCell:
    def test_single_cell_cached(self, tmp_path):
        a = run_cell("175.vpr", named_config("vc"), TINY, cache_dir=tmp_path)
        b = run_cell("175.vpr", named_config("vc"), TINY, cache_dir=tmp_path)
        assert a == b
        assert len(DiskCache(tmp_path)) == 1


class TestCacheAtomicity:
    """Crash/concurrency safety of ``DiskCache.put`` (tempfile + replace)."""

    def test_concurrent_writers_same_key_never_tear(self, tmp_path):
        # Many threads hammering one key must each publish a *complete*
        # document: the winning entry decodes to the result, and no
        # reader in between may ever see a torn/partial file.
        import threading

        cache = DiskCache(tmp_path)
        result = run_cell("175.vpr", named_config("orig"), TINY, cache=False)
        key = "aa" + "5" * 62
        errors = []

        def writer():
            for _ in range(25):
                cache.put(key, result)

        def reader():
            for _ in range(50):
                got = DiskCache(tmp_path).get(key)
                if got is not None and got != result:
                    errors.append("torn read")

        threads = [threading.Thread(target=writer) for _ in range(4)]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert cache.get(key) == result
        # No temp droppings left behind.
        leftovers = [p for p in cache.root.rglob("*.tmp")]
        assert leftovers == []

    def test_concurrent_writers_distinct_keys(self, tmp_path):
        import threading

        cache = DiskCache(tmp_path)
        result = run_cell("175.vpr", named_config("orig"), TINY, cache=False)
        keys = [f"{i:02x}" + "6" * 62 for i in range(16)]

        def writer(my_keys):
            for k in my_keys:
                cache.put(k, result)

        threads = [
            threading.Thread(target=writer, args=(keys[i::4],))
            for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(cache) == len(keys)
        assert all(cache.get(k) == result for k in keys)


class TestCacheQuota:
    """LRU eviction and the ``$REPRO_CACHE_MAX_MB`` quota."""

    @pytest.fixture()
    def filled(self, tmp_path):
        import os as _os

        cache = DiskCache(tmp_path)
        result = run_cell("175.vpr", named_config("orig"), TINY, cache=False)
        keys = [f"{i:02x}" + "7" * 62 for i in range(6)]
        for age, key in enumerate(keys):
            cache.put(key, result)
            # Deterministic, strictly increasing recency: keys[0] oldest.
            _os.utime(cache._path(key), (1_000_000 + age, 1_000_000 + age))
        return cache, keys, result

    def entry_mb(self, cache):
        return cache.stats().total_bytes / len(cache) / (1024 * 1024)

    def test_stats_counts_entries_and_bytes(self, filled):
        cache, keys, _ = filled
        stats = cache.stats()
        assert stats.entries == len(keys)
        assert stats.total_bytes > 0
        assert stats.quota_mb is None
        assert stats.to_dict()["entries"] == len(keys)

    def test_prune_evicts_oldest_first(self, filled):
        cache, keys, result = filled
        budget = self.entry_mb(cache) * 2.5  # room for two entries
        pruned = cache.prune(budget)
        assert pruned.removed == 4
        assert pruned.kept == 2
        # The two *newest* survive.
        assert cache.get(keys[-1]) == result
        assert cache.get(keys[-2]) == result
        assert cache.get(keys[0]) is None

    def test_get_refreshes_recency(self, filled):
        import os as _os

        cache, keys, result = filled
        # Touch the oldest entry through get(); it must now outlive the
        # untouched middle entries (true LRU, not fill-order FIFO).
        assert cache.get(keys[0]) == result
        _os.utime(cache._path(keys[0]), (2_000_000, 2_000_000))
        cache.prune(self.entry_mb(cache) * 1.5)
        assert cache.get(keys[0]) == result
        assert cache.get(keys[1]) is None

    def test_prune_without_quota_raises(self, tmp_path):
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError, match="REPRO_CACHE_MAX_MB"):
            DiskCache(tmp_path).prune()

    def test_put_autoprunes_under_quota(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_PRUNE_EVERY", "1")
        probe = DiskCache(tmp_path)
        result = run_cell("175.vpr", named_config("orig"), TINY, cache=False)
        probe.put("00" + "8" * 62, result)
        budget = probe.stats().total_mb * 2.5
        cache = DiskCache(tmp_path, max_mb=budget)
        for i in range(1, 8):
            cache.put(f"{i:02x}" + "8" * 62, result)
        # Every put scanned (interval 1): the directory never holds more
        # than the quota allows.
        assert len(cache) <= 2

    def test_env_quota_parsing(self, monkeypatch):
        from repro.common.errors import ConfigError
        from repro.sim.executor import default_cache_quota_mb

        monkeypatch.delenv("REPRO_CACHE_MAX_MB", raising=False)
        assert default_cache_quota_mb() is None
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "64")
        assert default_cache_quota_mb() == 64.0
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "not-a-number")
        with pytest.raises(ConfigError, match="REPRO_CACHE_MAX_MB"):
            default_cache_quota_mb()
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "-3")
        with pytest.raises(ConfigError, match="positive"):
            default_cache_quota_mb()
