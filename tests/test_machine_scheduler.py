"""Tests for the STA machine and the thread-pipelining scheduler."""

from __future__ import annotations

import dataclasses

import pytest

from repro.common.config import (
    CacheConfig,
    MachineConfig,
    SidecarConfig,
    SidecarKind,
    SimParams,
    ThreadUnitConfig,
    WrongExecutionConfig,
)
from repro.common.errors import SimulationError
from repro.common.rng import StreamFactory
from repro.isa.cfg import BlockSpec, BranchSpec, IterationCFG, MemSlot
from repro.sta.machine import Machine
from repro.sta.scheduler import Scheduler
from repro.workloads.patterns import RandomPattern, SequentialPattern
from repro.workloads.program import (
    ParallelRegionSpec,
    SequentialRegionSpec,
    WrongExecProfile,
)
from repro.workloads.tracegen import TraceGenerator


def small_cfg(n_tus=4, wrong_thread=False, wrong_path=False):
    return MachineConfig(
        name="t",
        n_thread_units=n_tus,
        tu=ThreadUnitConfig(
            issue_width=4,
            rob_size=32,
            lsq_size=32,
            l1d=CacheConfig(size=1024, assoc=1, block_size=64, name="l1d"),
            l1i=CacheConfig(size=2048, assoc=2, block_size=64, name="l1i"),
            sidecar=SidecarConfig(kind=SidecarKind.WEC, entries=4)
            if wrong_thread or wrong_path
            else SidecarConfig(),
        ),
        wrong_exec=WrongExecutionConfig(wrong_path=wrong_path,
                                        wrong_thread=wrong_thread),
    )


def region(dep_coupling=0.1, iters=12):
    cfg = IterationCFG(
        entry="a",
        blocks=[
            BlockSpec(
                "a",
                30,
                mem_slots=(MemSlot("d"), MemSlot("d"),
                           MemSlot("o", is_store=True, is_target_store=True)),
                branch=BranchSpec(0.9, None, None, noise=0.05),
            ),
        ],
    )
    return ParallelRegionSpec(
        name="sched.region",
        cfg=cfg,
        patterns={
            "d": SequentialPattern("d", 0x10000, 32 * 1024, stride=32,
                                   per_iter=2, stagger=False),
            "o": SequentialPattern("o", 0x100000, 8 * 1024, stride=8,
                                   per_iter=1, stagger=False),
            "p": RandomPattern("p", 0x200000, 8 * 1024, stagger=False),
        },
        iters_per_invocation=iters,
        dep_coupling=dep_coupling,
        pollution_pattern="p",
    )


def seq_region():
    cfg = IterationCFG(
        entry="a",
        blocks=[BlockSpec("a", 20, mem_slots=(
            MemSlot("d"), MemSlot("o", is_store=True)))],
    )
    return SequentialRegionSpec(
        name="sched.seq",
        cfg=cfg,
        patterns={
            "d": SequentialPattern("d", 0x10000, 32 * 1024, stride=32,
                                   per_iter=1, stagger=False),
            "o": SequentialPattern("o", 0x300000, 8 * 1024, stride=8,
                                   per_iter=1, stagger=False),
        },
        chunks_per_invocation=6,
    )


def make(n_tus=4, **kw):
    machine = Machine(small_cfg(n_tus=n_tus, **kw), SimParams(seed=5))
    sched = Scheduler(machine, TraceGenerator(StreamFactory(5)))
    return machine, sched


class TestMachine:
    def test_construction(self):
        machine, _ = make(n_tus=4)
        assert machine.n_tus == 4
        assert len(machine.tus) == 4
        assert machine.bus.n_taps == 4

    def test_round_robin_assignment(self):
        machine, _ = make(n_tus=4)
        assert machine.tu_for_iteration(0).tu_id == 0
        assert machine.tu_for_iteration(5).tu_id == 1
        assert machine.tu_for_iteration(11).tu_id == 3

    def test_set_head_validation(self):
        machine, _ = make(n_tus=2)
        machine.set_head(1)
        assert machine.head_tu == 1
        with pytest.raises(SimulationError):
            machine.set_head(5)

    def test_collect_stats_covers_components(self):
        machine, sched = make()
        sched.run_parallel_region(region(), 0)
        stats = machine.collect_stats()
        assert any(k.startswith("tu0.mem.") for k in stats)
        assert any(k.startswith("l2.") for k in stats)
        assert any(k.startswith("tu0.bpred.") for k in stats)

    def test_reset_statistics_keeps_cache_state(self):
        machine, sched = make()
        sched.run_parallel_region(region(), 0)
        occ_before = machine.tus[0].mem.l1d.occupancy()
        machine.reset_statistics()
        assert machine.tus[0].mem.l1d.occupancy() == occ_before
        assert machine.l1_traffic == 0

    def test_full_reset_clears_caches(self):
        machine, sched = make()
        sched.run_parallel_region(region(), 0)
        machine.reset()
        assert machine.tus[0].mem.l1d.occupancy() == 0
        assert machine.head_tu == 0


class TestParallelScheduling:
    def test_region_cycles_positive_and_spread(self):
        machine, sched = make(n_tus=4)
        rr = sched.run_parallel_region(region(iters=12), 0)
        assert rr.cycles > 0
        assert rr.iterations == 12
        # All four TUs executed iterations.
        for tu in machine.tus:
            assert tu.stats["iterations"] == 3

    def test_pipelining_speeds_up(self):
        r = region(dep_coupling=0.0, iters=16)
        m1, s1 = make(n_tus=1)
        t1 = s1.run_parallel_region(r, 0).cycles
        m4, s4 = make(n_tus=4)
        t4 = s4.run_parallel_region(r, 0).cycles
        assert t4 < t1  # thread pipelining overlaps iterations

    def test_coupling_serializes(self):
        loose = region(dep_coupling=0.0, iters=16)
        tight = dataclasses.replace(loose, dep_coupling=1.0)
        _, s1 = make(n_tus=4)
        t_loose = s1.run_parallel_region(loose, 0).cycles
        _, s2 = make(n_tus=4)
        t_tight = s2.run_parallel_region(tight, 0).cycles
        assert t_tight > t_loose

    def test_head_moves_to_last_iteration_tu(self):
        machine, sched = make(n_tus=4)
        sched.run_parallel_region(region(iters=10), 0)  # iters 0..9
        assert machine.head_tu == 9 % 4

    def test_empty_range_rejected(self):
        machine, sched = make()
        bad = dataclasses.replace(region(), iters_per_invocation=1)
        # invocation range is fine; force an empty one artificially
        with pytest.raises(SimulationError):
            # global_iter_range is lo==hi only if iters==0, which the
            # spec forbids; simulate by calling with a handcrafted spec.
            object.__setattr__  # appease linters
            bad2 = dataclasses.replace(bad)
            bad2.__dict__["iters_per_invocation"] = 0
            sched.run_parallel_region(bad2, 0)

    def test_wrong_threads_spawn_only_when_enabled(self):
        r = region(iters=8)
        m_off, s_off = make(n_tus=4, wrong_thread=False)
        rr_off = s_off.run_parallel_region(r, 0)
        assert rr_off.wrong_thread_loads == 0
        m_on, s_on = make(n_tus=4, wrong_thread=True)
        rr_on = s_on.run_parallel_region(r, 0)
        assert rr_on.wrong_thread_loads > 0

    def test_wrong_threads_need_multiple_tus(self):
        r = region(iters=8)
        _, s = make(n_tus=1, wrong_thread=True)
        rr = s.run_parallel_region(r, 0)
        assert rr.wrong_thread_loads == 0

    def test_single_tu_pays_no_fork_cost(self):
        """With one TU there is no fork; cycles must equal the sum of
        iteration times (no added fork delay)."""
        r = region(dep_coupling=0.0, iters=4)
        machine, sched = make(n_tus=1)
        rr = sched.run_parallel_region(r, 0)
        # Re-execute on a fresh identical machine to sum iteration times.
        machine2, _ = make(n_tus=1)
        tg = TraceGenerator(StreamFactory(5))
        total = sum(
            machine2.tus[0]
            .execute_iteration(r, i, tg.iteration_trace(r, i), tg)
            .total
            for i in range(4)
        )
        assert rr.cycles == pytest.approx(total, rel=1e-9)


class TestSequentialScheduling:
    def test_runs_on_head_tu(self):
        machine, sched = make(n_tus=4)
        machine.set_head(2)
        rr = sched.run_sequential_region(seq_region(), 0)
        assert rr.kind == "sequential"
        assert machine.tus[2].stats["chunks"] == 6
        assert machine.tus[0].stats["chunks"] == 0

    def test_cycles_accumulate_over_chunks(self):
        machine, sched = make(n_tus=2)
        rr = sched.run_sequential_region(seq_region(), 0)
        assert rr.cycles > 0
        assert rr.iterations == 6
