"""Tests for counters and summary statistics."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import AnalysisError
from repro.common.stats import (
    Counter,
    CounterGroup,
    Histogram,
    arithmetic_mean,
    geometric_mean,
    normalized_time,
    relative_speedup_pct,
    speedup,
    weighted_mean_speedup,
)


class TestCounter:
    def test_add_default(self):
        c = Counter("x")
        c.add()
        c.add(5)
        assert c.value == 6
        assert int(c) == 6

    def test_reset(self):
        c = Counter("x", 10)
        c.reset()
        assert c.value == 0

    def test_repr(self):
        assert "x" in repr(Counter("x", 3))


class TestCounterGroup:
    def test_lazy_creation_and_getitem(self):
        g = CounterGroup("tu0")
        assert g["misses"] == 0  # absent -> 0, not KeyError
        g.counter("misses").add(3)
        assert g["misses"] == 3

    def test_counter_identity(self):
        g = CounterGroup("tu0")
        assert g.counter("a") is g.counter("a")

    def test_as_dict_qualified(self):
        g = CounterGroup("tu0")
        g.counter("hits").add(2)
        assert g.as_dict() == {"tu0.hits": 2}
        assert g.as_dict(qualified=False) == {"hits": 2}

    def test_merge_from(self):
        a, b = CounterGroup("a"), CounterGroup("b")
        a.counter("x").add(1)
        b.counter("x").add(2)
        b.counter("y").add(3)
        a.merge_from(b)
        assert a["x"] == 3 and a["y"] == 3

    def test_reset(self):
        g = CounterGroup("g")
        g.counter("x").add(5)
        g.reset()
        assert g["x"] == 0

    def test_iteration(self):
        g = CounterGroup("g")
        g.counter("a")
        g.counter("b")
        assert sorted(c.name for c in g) == ["a", "b"]


class TestSpeedupMath:
    def test_speedup(self):
        assert speedup(200.0, 100.0) == pytest.approx(2.0)

    def test_speedup_nonpositive(self):
        with pytest.raises(AnalysisError):
            speedup(100.0, 0.0)

    def test_relative_speedup_pct(self):
        assert relative_speedup_pct(110.0, 100.0) == pytest.approx(10.0)
        assert relative_speedup_pct(100.0, 110.0) == pytest.approx(-9.0909, abs=1e-3)

    def test_normalized_time(self):
        assert normalized_time(200.0, 100.0) == pytest.approx(0.5)
        with pytest.raises(AnalysisError):
            normalized_time(0.0, 100.0)

    def test_weighted_mean_is_harmonic(self):
        # Two benchmarks with speedups 2 and 4: harmonic mean = 2.667.
        result = weighted_mean_speedup([100.0, 100.0], [50.0, 25.0])
        assert result == pytest.approx(2 / (1 / 2 + 1 / 4))

    def test_weighted_mean_equal_importance(self):
        # A long benchmark must not dominate: identical per-benchmark
        # speedups give that speedup regardless of absolute run length.
        result = weighted_mean_speedup([1e9, 10.0], [5e8, 5.0])
        assert result == pytest.approx(2.0)

    def test_weighted_mean_errors(self):
        with pytest.raises(AnalysisError):
            weighted_mean_speedup([], [])
        with pytest.raises(AnalysisError):
            weighted_mean_speedup([1.0], [1.0, 2.0])
        with pytest.raises(AnalysisError):
            weighted_mean_speedup([0.0], [1.0])

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1.0, max_value=1e6),
                st.floats(min_value=1.0, max_value=1e6),
            ),
            min_size=1,
            max_size=10,
        )
    )
    def test_weighted_mean_bounded_by_extremes(self, pairs):
        base = [b for b, _ in pairs]
        new = [n for _, n in pairs]
        speedups = [b / n for b, n in pairs]
        m = weighted_mean_speedup(base, new)
        assert min(speedups) - 1e-9 <= m <= max(speedups) + 1e-9


class TestMeans:
    def test_geometric(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        with pytest.raises(AnalysisError):
            geometric_mean([])
        with pytest.raises(AnalysisError):
            geometric_mean([1.0, -1.0])

    def test_arithmetic(self):
        assert arithmetic_mean([1.0, 3.0]) == pytest.approx(2.0)
        with pytest.raises(AnalysisError):
            arithmetic_mean([])


class TestHistogram:
    def test_record_buckets(self):
        h = Histogram(edges=[1, 10, 100])
        for v in (0.5, 5, 50, 500):
            h.record(v)
        assert h.counts == [1, 1, 1]
        assert h.overflow == 1
        assert h.total == 4

    def test_fractions(self):
        h = Histogram(edges=[1, 10])
        h.record(0.5)
        h.record(5)
        assert h.fractions() == [0.5, 0.5]

    def test_fractions_empty(self):
        assert Histogram(edges=[1]).fractions() == [0.0]

    def test_fractions_exclude_overflow(self):
        # Regression: overflow observations must be excluded from the
        # denominator too, so in-range fractions sum to 1.
        h = Histogram(edges=[1, 10])
        h.record(0.5)
        h.record(5)
        h.record(500)  # overflow
        assert h.fractions() == [0.5, 0.5]
        assert sum(h.fractions()) == pytest.approx(1.0)

    def test_fractions_all_overflow(self):
        h = Histogram(edges=[1])
        h.record(100)
        assert h.fractions() == [0.0]

    def test_merge(self):
        a = Histogram(edges=[1, 10])
        b = Histogram(edges=[1, 10])
        a.record(0.5)
        b.record(5)
        a.merge_from(b)
        assert a.counts == [1, 1] and a.total == 2

    def test_merge_mismatched_edges(self):
        with pytest.raises(AnalysisError):
            Histogram(edges=[1]).merge_from(Histogram(edges=[2]))

    def test_bad_counts_length(self):
        with pytest.raises(AnalysisError):
            Histogram(edges=[1, 2], counts=[0])
