"""Tests for the fidelity observatory (repro.obs.fidelity).

Covers the claim registry (parsing + validation), claim evaluation over
a real (tiny) campaign grid, the drift checker's polarity semantics,
export-document validation, the trajectory file, the markdown renderer,
campaign telemetry — and the bit-identity discipline: instrumenting a
grid run for a fidelity campaign must not change a single simulated
cycle.
"""

from __future__ import annotations

import json

import pytest

from repro.common.config import SidecarKind, SimParams
from repro.common.errors import AnalysisError
from repro.obs.fidelity import (
    Claim,
    apply_perturbation,
    append_trend,
    campaign_sections,
    claim_band,
    claims_fingerprint,
    default_claims_path,
    diff_exports,
    evaluate_claims,
    load_claims,
    load_fidelity_export,
    load_trend,
    render_markdown,
    render_trend,
    run_campaign,
    validate_fidelity_export,
)
from repro.obs.telemetry import (
    M_FIDELITY_CAMPAIGNS,
    M_FIDELITY_CLAIM_SCORE,
    M_FIDELITY_CLAIMS,
    standard_registry,
)
from repro.sim.sweep import run_grid
from repro.sta.configs import named_config
from repro.workloads import BENCHMARK_NAMES

TINY = dict(scale=2e-6, seed=2003)


def write_claims(tmp_path, claims, schema=1, kind="repro-claims"):
    path = tmp_path / "claims.json"
    path.write_text(json.dumps(
        {"kind": kind, "schema": schema, "claims": claims}))
    return path


def minimal_claim(**over):
    data = {
        "id": "fig11.x", "source": "Figure 11", "title": "t",
        "kind": "bool", "expr": "True", "severity": "gate",
    }
    data.update(over)
    return data


class TestRegistry:
    def test_committed_registry_loads(self):
        claims = load_claims()
        assert len(claims) >= 40
        assert len({c.id for c in claims}) == len(claims)
        # Every claim id is namespaced by its source group.
        assert all("." in c.id for c in claims)

    def test_fingerprint_is_stable(self):
        assert claims_fingerprint() == claims_fingerprint()
        assert len(claims_fingerprint()) == 16

    def test_default_path_exists(self):
        assert default_claims_path().is_file()

    def test_rejects_wrong_kind(self, tmp_path):
        path = write_claims(tmp_path, [minimal_claim()], kind="nope")
        with pytest.raises(AnalysisError, match="repro-claims"):
            load_claims(path)

    def test_rejects_unknown_schema(self, tmp_path):
        path = write_claims(tmp_path, [minimal_claim()], schema=99)
        with pytest.raises(AnalysisError, match="schema"):
            load_claims(path)

    def test_rejects_duplicate_ids(self, tmp_path):
        path = write_claims(tmp_path, [minimal_claim(), minimal_claim()])
        with pytest.raises(AnalysisError, match="duplicate id"):
            load_claims(path)

    def test_value_claim_needs_band(self, tmp_path):
        path = write_claims(
            tmp_path, [minimal_claim(kind="value", expr="1.0")])
        with pytest.raises(AnalysisError, match="band"):
            load_claims(path)

    def test_band_lo_above_hi_rejected(self, tmp_path):
        path = write_claims(tmp_path, [minimal_claim(
            kind="value", expr="1.0", band=[5.0, 1.0])])
        with pytest.raises(AnalysisError, match="lo > hi"):
            load_claims(path)

    def test_band_needs_one_bound(self, tmp_path):
        path = write_claims(tmp_path, [minimal_claim(
            kind="value", expr="1.0", band=[None, None])])
        with pytest.raises(AnalysisError, match="at least one bound"):
            load_claims(path)

    def test_nearer_needs_paper_value(self, tmp_path):
        path = write_claims(tmp_path, [minimal_claim(
            kind="value", expr="1.0", band=[0, 1], better="nearer")])
        with pytest.raises(AnalysisError, match="paper_value"):
            load_claims(path)

    def test_unknown_requires_section_rejected(self, tmp_path):
        path = write_claims(
            tmp_path, [minimal_claim(requires=["fig99"])])
        with pytest.raises(AnalysisError, match="fig99"):
            load_claims(path)

    def test_claim_band_lookup(self):
        lo, hi = claim_band("fig17.missred_band")
        assert lo is not None and hi is not None and lo < hi

    def test_claim_band_unknown_claim(self):
        with pytest.raises(AnalysisError, match="no claim"):
            claim_band("fig99.nope")

    def test_claim_band_bandless_claim(self):
        with pytest.raises(AnalysisError, match="no band"):
            claim_band("fig11.wec_best_config")


class TestCampaignGrid:
    def test_sections_cover_the_declared_names(self):
        sections = campaign_sections()
        # ``tables`` is claims-only; fig10/fig17 reuse fig09/fig11 cells.
        assert set(sections) == {
            "fig08", "fig09", "fig11", "fig12", "fig13", "fig14",
            "fig15", "fig16",
        }
        labels = [l for cfgs in sections.values() for l in cfgs]
        assert len(labels) == len(set(labels)) == 51

    def test_perturbation_strips_every_wec(self):
        perturbed = apply_perturbation(campaign_sections(), "no-wec")
        kinds = {
            cfg.tu.sidecar.kind
            for cfgs in perturbed.values() for cfg in cfgs.values()
        }
        assert SidecarKind.WEC not in kinds

    def test_unknown_perturbation_rejected(self):
        with pytest.raises(AnalysisError, match="unknown perturbation"):
            apply_perturbation(campaign_sections(), "magic")


@pytest.fixture(scope="module")
def tiny_grid():
    """A 2-config × 2-benchmark grid claim expressions can run over."""
    axis = {
        "orig": named_config("orig", n_tus=2),
        "wth-wp-wec": named_config("wth-wp-wec", n_tus=2),
    }
    return run_grid(axis, benchmarks=["164.gzip", "181.mcf"],
                    params=SimParams(**TINY), cache=False, engine="fast")


def make_claim(**over):
    data = minimal_claim()
    data.update(over)
    return Claim.from_dict(data, 0)


class TestEvaluateClaims:
    def test_bool_claim_pass_and_fail(self, tiny_grid):
        claims = [
            make_claim(id="a.t", expr="len(benchmarks) == 2"),
            make_claim(id="a.f", expr="len(benchmarks) == 99"),
        ]
        by_id = {s.claim.id: s for s in
                 evaluate_claims(claims, tiny_grid, ["fig11"])}
        assert by_id["a.t"].status == "pass"
        assert by_id["a.t"].measured == 1.0
        assert by_id["a.f"].status == "fail"
        assert by_id["a.f"].measured == 0.0

    def test_value_claim_scored_against_band(self, tiny_grid):
        claims = [
            make_claim(id="a.in", kind="value", band=[-1000, 1000],
                       expr="avg_speedup('wth-wp-wec')"),
            make_claim(id="a.out", kind="value", band=[1000, None],
                       expr="avg_speedup('wth-wp-wec')"),
        ]
        by_id = {s.claim.id: s for s in
                 evaluate_claims(claims, tiny_grid, ["fig11"])}
        assert by_id["a.in"].status == "pass"
        assert by_id["a.out"].status == "fail"
        assert by_id["a.in"].measured == by_id["a.out"].measured

    def test_missing_section_skips_with_reason(self, tiny_grid):
        scored, = evaluate_claims(
            [make_claim(requires=["fig13"])], tiny_grid, ["fig11"])
        assert scored.status == "skipped"
        assert "fig13" in scored.reason

    def test_broken_expression_skips_with_reason(self, tiny_grid):
        scored, = evaluate_claims(
            [make_claim(expr="speedup('164.gzip', 'nosuch')")],
            tiny_grid, ["fig11"])
        assert scored.status == "skipped"
        assert "nosuch" in scored.reason

    def test_expressions_cannot_reach_builtins(self, tiny_grid):
        scored, = evaluate_claims(
            [make_claim(expr="open('/etc/hostname')")],
            tiny_grid, ["fig11"])
        assert scored.status == "skipped"
        assert "open" in scored.reason

    def test_never_drops_a_claim(self, tiny_grid):
        claims = load_claims()
        scored = evaluate_claims(claims, tiny_grid, ["tables"])
        assert len(scored) == len(claims)
        assert all(s.status != "skipped" or s.reason for s in scored)


class TestBitIdentity:
    def test_instrumented_grid_identical_to_plain(self):
        """A fidelity-instrumented run must not change a single cycle."""
        axis = {
            "orig": named_config("orig", n_tus=2),
            "wth-wp-wec": named_config("wth-wp-wec", n_tus=2),
        }
        kwargs = dict(benchmarks=["164.gzip", "181.mcf"],
                      params=SimParams(**TINY), cache=False, engine="fast")
        plain = run_grid(axis, **kwargs)
        instrumented = run_grid(
            axis, telemetry=standard_registry(), perf_context="fidelity",
            **kwargs)
        assert set(plain) == set(instrumented)
        for key in plain:
            assert plain[key].total_cycles == instrumented[key].total_cycles
            assert plain[key].ipc == instrumented[key].ipc


class TestRunCampaign:
    def test_small_campaign_scores_every_claim(self, tmp_path):
        reg = standard_registry()
        doc = run_campaign(sections=["fig12"], cache=False, engine="fast",
                           telemetry=reg, **TINY)
        assert validate_fidelity_export(doc) == []
        claims = load_claims()
        assert len(doc["claims"]) == len(claims)
        by_id = {c["id"]: c for c in doc["claims"]}
        # fig12-only claims evaluate; claims needing unrun sections skip.
        assert by_id["fig12.wec_robust_to_assoc"]["status"] in ("pass", "fail")
        assert by_id["fig11.wec_avg_speedup"]["status"] == "skipped"
        assert "fig11" in by_id["fig11.wec_avg_speedup"]["reason"]
        # "tables" rides along even when not requested.
        assert by_id["tables.t3_constant_issue"]["status"] == "pass"
        assert doc["sections"][0] == "tables"
        # Telemetry: one ok campaign, one count per claim, gauges set.
        assert reg.value(M_FIDELITY_CAMPAIGNS, status="ok") == 1
        total = sum(reg.value(M_FIDELITY_CLAIMS, status=s)
                    for s in ("pass", "fail", "skipped"))
        assert total == len(claims)
        assert reg.value(M_FIDELITY_CLAIM_SCORE,
                         claim="fig12.wec_robust_to_assoc") == \
            by_id["fig12.wec_robust_to_assoc"]["measured"]

    def test_unknown_section_rejected(self):
        with pytest.raises(AnalysisError, match="unknown section"):
            run_campaign(sections=["fig99"], **TINY)

    def test_perturbed_campaign_recorded_in_params(self):
        doc = run_campaign(sections=["fig12"], cache=False, engine="fast",
                           perturb="no-wec", **TINY)
        assert doc["params"]["perturb"] == "no-wec"


def scored_doc(claims):
    return {
        "kind": "repro-fidelity-export", "schema": 1,
        "params": {"scale": 2e-6, "seed": 2003, "engine": "", "perturb": ""},
        "sections": ["tables"], "n_cells": 0,
        "provenance": {"git_sha": "", "code_token": "", "claims_fp": ""},
        "summary": {"gate": {}, "track": {}},
        "claims": claims,
    }


def scored_claim(**over):
    data = {
        "id": "fig11.x", "source": "Figure 11", "title": "t",
        "kind": "value", "severity": "gate", "requires": [], "unit": "%",
        "paper": "", "paper_value": None, "band": [0, 100],
        "better": "higher", "notes": "", "status": "pass",
        "measured": 10.0, "reason": "",
    }
    data.update(over)
    return data


class TestDiffExports:
    def test_no_drift(self):
        doc = scored_doc([scored_claim()])
        diff = diff_exports(doc, doc)
        assert not diff.gate_regressions and not diff.track_regressions
        assert "ok: no fidelity drift" in diff.render()

    def test_status_worsening_regresses(self):
        base = scored_doc([scored_claim()])
        new = scored_doc([scored_claim(status="fail")])
        diff = diff_exports(base, new)
        assert len(diff.gate_regressions) == 1
        assert "REGRESSION" in diff.render()

    def test_status_improvement_is_not_a_regression(self):
        base = scored_doc([scored_claim(status="fail")])
        new = scored_doc([scored_claim(status="pass", measured=10.5)])
        assert not diff_exports(base, new).gate_regressions

    def test_higher_polarity_drift(self):
        base = scored_doc([scored_claim(measured=10.0)])
        worse = scored_doc([scored_claim(measured=8.0)])   # -20 %
        better = scored_doc([scored_claim(measured=12.0)])
        assert diff_exports(base, worse, threshold_pct=10).gate_regressions
        assert not diff_exports(base, worse, threshold_pct=25).gate_regressions
        assert not diff_exports(base, better, threshold_pct=10) \
            .gate_regressions

    def test_lower_polarity_drift(self):
        base = scored_doc([scored_claim(better="lower", measured=10.0)])
        worse = scored_doc([scored_claim(better="lower", measured=12.0)])
        assert diff_exports(base, worse, threshold_pct=10).gate_regressions

    def test_nearer_polarity_drift(self):
        base = scored_doc(
            [scored_claim(better="nearer", paper_value=10.0, measured=10.0)])
        away = scored_doc(
            [scored_claim(better="nearer", paper_value=10.0, measured=12.0)])
        toward = scored_doc(
            [scored_claim(better="nearer", paper_value=10.0, measured=9.9)])
        assert diff_exports(base, away, threshold_pct=10).gate_regressions
        assert not diff_exports(base, toward, threshold_pct=10) \
            .gate_regressions

    def test_track_severity_never_gates(self):
        base = scored_doc([scored_claim(severity="track")])
        new = scored_doc([scored_claim(severity="track", status="fail")])
        diff = diff_exports(base, new)
        assert not diff.gate_regressions
        assert len(diff.track_regressions) == 1
        assert "gates held" in diff.render()

    def test_missing_claim_regresses(self):
        base = scored_doc([scored_claim()])
        diff = diff_exports(base, scored_doc([]))
        assert len(diff.gate_regressions) == 1
        assert diff.rows[0].new_status == "missing"

    def test_new_claim_is_informational(self):
        new = scored_doc([scored_claim()])
        diff = diff_exports(scored_doc([]), new)
        assert not diff.gate_regressions
        assert diff.rows[0].note == "new claim (not in baseline)"

    def test_bool_claims_have_no_numeric_drift(self):
        base = scored_doc([scored_claim(kind="bool", measured=1.0)])
        new = scored_doc([scored_claim(kind="bool", measured=1.0)])
        assert diff_exports(base, new).rows[0].drift_pct is None


class TestExportDocs:
    def test_validate_rejects_wrong_kind(self):
        doc = scored_doc([scored_claim()])
        doc["kind"] = "nope"
        assert any("kind" in p for p in validate_fidelity_export(doc))

    def test_validate_rejects_skip_without_reason(self):
        doc = scored_doc([scored_claim(status="skipped", reason="")])
        assert any("without a reason" in p
                   for p in validate_fidelity_export(doc))

    def test_load_roundtrip(self, tmp_path):
        path = tmp_path / "f.json"
        path.write_text(json.dumps(scored_doc([scored_claim()])))
        assert load_fidelity_export(path)["claims"][0]["id"] == "fig11.x"

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(AnalysisError, match="no fidelity export"):
            load_fidelity_export(tmp_path / "absent.json")

    def test_load_invalid_doc(self, tmp_path):
        path = tmp_path / "f.json"
        path.write_text(json.dumps({"kind": "nope"}))
        with pytest.raises(AnalysisError, match="not a valid"):
            load_fidelity_export(path)


class TestTrend:
    def test_append_load_render(self, tmp_path):
        doc = scored_doc([scored_claim(paper_value=9.7)])
        append_trend(doc, tmp_path)
        append_trend(doc, tmp_path)
        entries = load_trend(tmp_path)
        assert len(entries) == 2
        assert entries[0]["headline"] == {"fig11.x": 10.0}
        text = render_trend(entries)
        assert "2 campaign(s)" in text
        assert "x=+10.0" in text

    def test_load_trend_missing(self, tmp_path):
        with pytest.raises(AnalysisError, match="no fidelity trajectory"):
            load_trend(tmp_path)


class TestRenderMarkdown:
    def test_report_shape(self):
        doc = scored_doc([
            scored_claim(paper="9.7 %", paper_value=9.7, band=[6, 14]),
            scored_claim(id="fig11.skip", status="skipped",
                         measured=None, reason="campaign did not run it"),
        ])
        doc["summary"] = {"gate": {"pass": 1, "fail": 0, "skipped": 1},
                          "track": {"pass": 0, "fail": 0, "skipped": 0}}
        text = render_markdown(doc)
        assert "**Verdict: 1/2 gate claims in band" in text
        assert "| [6, 14] |" in text
        assert "✅ pass" in text
        assert "*(skipped: campaign did not run it)*" in text
        assert "do not edit by hand" in text

    def test_rejects_invalid_doc(self):
        with pytest.raises(AnalysisError, match="invalid export"):
            render_markdown({"kind": "nope"})
