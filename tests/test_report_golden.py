"""Golden-output tests for the analysis renderers.

The ASCII charts (:mod:`repro.analysis.plots`) and the experiment-report
machinery (:mod:`repro.analysis.report`) feed the committed artifacts
(EXPERIMENTS.md, reproduction_report.md, docs/FIDELITY.md); these tests
pin their exact output for fixed inputs so formatting changes are
deliberate, reviewed diffs rather than silent drift.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis.plots import bar_chart, grouped_bar_chart
from repro.analysis.report import (
    ExperimentRecord,
    ShapeCheck,
    claims_to_record,
    render_report,
)
from repro.common.errors import AnalysisError


def golden(text: str) -> str:
    return textwrap.dedent(text).strip("\n")


class TestBarChartGolden:
    def test_bar_chart(self):
        out = bar_chart(
            "traffic (%)",
            {"mcf": 20.0, "vpr": -10.0, "gzip": 5.0},
            width=10,
        )
        assert out == golden("""
            traffic (%)
              mcf  |########## +20.0%
              vpr  |----- -10.0%
              gzip |## +5.0%
        """)  # 5/20 of width 10 rounds half-to-even: two fill chars.

    def test_bar_chart_custom_unit(self):
        out = bar_chart("ipc", {"a": 2.0}, width=4, unit="")
        assert out == golden("""
            ipc
              a |#### +2.0
        """)

    def test_bar_chart_all_zero_values(self):
        # The max-abs guard must not divide by zero.
        out = bar_chart("z", {"a": 0.0}, width=10)
        assert out == golden("""
            z
              a | +0.0%
        """)

    def test_bar_chart_empty_rejected(self):
        with pytest.raises(AnalysisError, match="no values"):
            bar_chart("t", {})

    def test_grouped_bar_chart(self):
        out = grouped_bar_chart(
            "fig (bars)",
            ["mcf", "gzip"],
            {"wec": {"mcf": 8.0, "gzip": 4.0}, "nlp": {"mcf": -2.0}},
            width=8,
        )
        assert out == golden("""
            fig (bars)
              mcf
                wec |######## +8.0%
                nlp |-- -2.0%
              gzip
                wec |#### +4.0%
        """)

    def test_grouped_bar_chart_empty_rejected(self):
        with pytest.raises(AnalysisError, match="no series"):
            grouped_bar_chart("t", ["g"], {})
        with pytest.raises(AnalysisError, match="no values"):
            grouped_bar_chart("t", ["g"], {"s": {}})


class TestReportGolden:
    def test_shape_check_render(self):
        check = ShapeCheck("wec wins", "+9.7 %", "+11.2 %", True)
        assert check.render() == golden("""
            - [PASS] wec wins
                paper:    +9.7 %
                measured: +11.2 %
        """)

    def test_shape_check_render_fail(self):
        assert ShapeCheck("d", "e", "m", False).render().startswith("- [FAIL]")

    def test_experiment_record_render(self):
        record = ExperimentRecord(
            exp_id="Figure 11",
            title="Relative speedups",
            workload="6 models",
            bench_target="pytest benchmarks/bench_fig11_configs.py",
            notes="See docs/FIDELITY.md.",
        )
        record.add_check("wec wins", "yes", "yes", True)
        assert record.passed
        assert record.render() == golden("""
            ## Figure 11 — Relative speedups

            *Workload*: 6 models
            *Regenerate with*: `pytest benchmarks/bench_fig11_configs.py`

            - [PASS] wec wins
                paper:    yes
                measured: yes

            See docs/FIDELITY.md.
        """) + "\n"

    def test_render_report(self):
        passing = ExperimentRecord("A", "t", "w", "b")
        passing.add_check("x", "e", "m", True)
        failing = ExperimentRecord("B", "t", "w", "b")
        failing.add_check("y", "e", "m", False)
        out = render_report([passing, failing], header="# Report")
        assert out.startswith("# Report\n")
        assert ("**Shape verdicts: 1/2 experiments match the paper's "
                "qualitative results.**") in out
        assert "## A — t" in out and "## B — t" in out

    def test_render_report_empty_rejected(self):
        with pytest.raises(AnalysisError, match="no experiment records"):
            render_report([])


def scored(**over):
    data = {
        "id": "fig11.x", "title": "wec average", "kind": "value",
        "status": "pass", "measured": 11.2, "unit": "%",
        "paper": "+9.7 %", "band": [6.0, 14.0], "reason": "",
    }
    data.update(over)
    return data


class TestClaimsToRecord:
    def test_value_claim_golden(self):
        record = claims_to_record(
            [scored()], exp_id="Figure 11", title="T", workload="w",
            bench_target="b")
        assert record.render() == golden("""
            ## Figure 11 — T

            *Workload*: w
            *Regenerate with*: `b`

            - [PASS] fig11.x: wec average
                paper:    +9.7 %
                measured: +11.20 % (band [6, 14])
        """) + "\n"

    def test_bool_claim_renders_yes_no(self):
        record = claims_to_record(
            [scored(kind="bool", measured=1.0, band=None, paper="")],
            exp_id="F", title="T", workload="w", bench_target="b")
        check = record.checks[0]
        assert check.measured == "yes"
        assert check.expected == "(shape predicate)"

    def test_skipped_claim_fails_with_reason(self):
        record = claims_to_record(
            [scored(status="skipped", measured=None, reason="no fig11")],
            exp_id="F", title="T", workload="w", bench_target="b")
        assert not record.passed
        assert record.checks[0].measured == "skipped: no fig11"

    def test_half_open_band_rendering(self):
        record = claims_to_record(
            [scored(band=[8.0, None])],
            exp_id="F", title="T", workload="w", bench_target="b")
        assert "(band [8, inf])" in record.checks[0].measured

    def test_failed_claim_fails_the_record(self):
        record = claims_to_record(
            [scored(status="fail")],
            exp_id="F", title="T", workload="w", bench_target="b")
        assert not record.passed

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError, match="no scored claims"):
            claims_to_record([], exp_id="F", title="T", workload="w",
                             bench_target="b")
