"""Property-based tests: memory-hierarchy invariants under random traffic.

These drive random interleavings of correct loads, stores and
wrong-execution loads through each sidecar policy and assert invariants
the Figure 5/6 design guarantees by construction:

* a block is never resident in the L1 and its sidecar simultaneously
  (the swap/promote protocol keeps them exclusive);
* the sidecar never exceeds its capacity;
* wrong-execution loads never change the set of L1-resident blocks in
  the WEC configuration (pollution freedom — the paper's core claim);
* counters remain consistent (hits + misses = accesses).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import (
    CacheConfig,
    MemorySystemConfig,
    SidecarConfig,
    SidecarKind,
)
from repro.mem.hierarchy import TUMemSystem
from repro.mem.l2 import SharedL2
from repro.obs.attrib import (
    AttributionCollector,
    PROV_NAMES,
    PROV_WRONG_PATH,
    PROV_WRONG_THREAD,
    SPECULATIVE_PROVS,
)


def make_system(kind: SidecarKind, entries: int = 4,
                attrib: AttributionCollector = None) -> TUMemSystem:
    l2 = SharedL2(
        MemorySystemConfig(
            l2=CacheConfig(size=16 * 1024, assoc=4, block_size=128,
                           hit_latency=12, name="l2")
        )
    )
    return TUMemSystem(
        0,
        CacheConfig(size=512, assoc=1, block_size=64, name="l1d"),
        CacheConfig(size=1024, assoc=2, block_size=64, name="l1i"),
        SidecarConfig(kind=kind, entries=entries),
        l2,
        attrib=attrib,
    )


OPS = st.lists(
    st.tuples(
        st.sampled_from(["load", "store", "wrong"]),
        st.integers(min_value=0, max_value=63),  # block index
    ),
    max_size=400,
)


def drive(mem: TUMemSystem, ops) -> None:
    for op, block in ops:
        addr = block * 64
        if op == "load":
            mem.load_correct(addr)
        elif op == "store":
            mem.store_correct(addr)
        else:
            mem.load_wrong(addr)


@pytest.mark.parametrize(
    "kind", [SidecarKind.WEC, SidecarKind.VICTIM, SidecarKind.PREFETCH]
)
@settings(max_examples=40, deadline=None)
@given(ops=OPS)
def test_l1_and_sidecar_exclusive(kind, ops):
    mem = make_system(kind)
    drive(mem, ops)
    l1_blocks = {b for b, _ in mem.l1d.resident_blocks()}
    side_blocks = {b for b, _ in mem.sidecar.items()}
    assert not (l1_blocks & side_blocks)


@pytest.mark.parametrize(
    "kind", [SidecarKind.WEC, SidecarKind.VICTIM, SidecarKind.PREFETCH]
)
@settings(max_examples=40, deadline=None)
@given(ops=OPS, entries=st.integers(min_value=1, max_value=8))
def test_sidecar_capacity_respected(kind, ops, entries):
    mem = make_system(kind, entries=entries)
    drive(mem, ops)
    assert len(mem.sidecar) <= entries


@settings(max_examples=40, deadline=None)
@given(ops=OPS)
def test_wec_wrong_loads_never_pollute_l1(ops):
    """Interleave correct traffic with wrong loads; the L1 contents must
    equal those of a run with the wrong loads stripped out."""
    with_wrong = make_system(SidecarKind.WEC)
    drive(with_wrong, ops)
    without = make_system(SidecarKind.WEC)
    drive(without, [(op, b) for op, b in ops if op != "wrong"])
    # Wrong loads may only have touched the WEC, never the L1: identical
    # L1 residency and identical LRU behaviour for correct traffic.
    assert {b for b, _ in with_wrong.l1d.resident_blocks()} == {
        b for b, _ in without.l1d.resident_blocks()
    }
    assert with_wrong.stats["l1_misses"] == without.stats["l1_misses"]


@settings(max_examples=40, deadline=None)
@given(ops=OPS)
def test_plain_wrong_loads_do_pollute(ops):
    """Conversely, without a WEC, enough wrong loads must perturb the L1
    (this is the pollution the paper measures)."""
    wrongs = [(op, b) for op, b in ops if op == "wrong"]
    if len({b for _, b in wrongs}) < 12:
        return  # not enough distinct wrong blocks to guarantee residue
    mem = make_system(SidecarKind.NONE)
    drive(mem, ops)
    assert mem.stats["wrong_fills"] > 0


@pytest.mark.parametrize(
    "kind",
    [SidecarKind.NONE, SidecarKind.WEC, SidecarKind.VICTIM, SidecarKind.PREFETCH],
)
@settings(max_examples=30, deadline=None)
@given(ops=OPS)
def test_counter_consistency(kind, ops):
    mem = make_system(kind)
    drive(mem, ops)
    s = mem.stats
    accesses = s["loads"] + s["stores"]
    assert s["l1_hits"] + s["l1_misses"] == accesses
    assert s["sidecar_hits"] + s["demand_fills"] == s["l1_misses"]
    assert s["demand_fills"] == mem.effective_misses
    # Every wrong load is accounted exactly once.
    assert (
        s["wrong_l1_hits"] + s["wrong_sidecar_hits"] + s["wrong_fills"]
        == s["wrong_loads"]
    )


#: The whole policy space the attribution layer must stay conservative
#: over — every sidecar kind plus the plain (no-sidecar) configuration.
ALL_KINDS = [
    SidecarKind.WEC,
    SidecarKind.VICTIM,
    SidecarKind.PREFETCH,
    SidecarKind.STREAM,
    SidecarKind.NONE,
]


@pytest.mark.parametrize("kind", ALL_KINDS)
@settings(max_examples=30, deadline=None)
@given(ops=OPS)
def test_attribution_lifetime_conservation(kind, ops):
    """Every speculative fill's lifetime is accounted exactly once:
    fills = useful + late + unused + polluting + still-open, per source
    and in total, whatever the policy and traffic interleaving."""
    attrib = AttributionCollector(window=64.0)
    mem = make_system(kind, attrib=attrib)
    for i, (op, block) in enumerate(ops):
        # March the clock and flip the wrong-execution kind so both
        # wrong provenances and several gap buckets are exercised.
        attrib.now = float(i * 3)
        addr = block * 64
        if op == "load":
            mem.load_correct(addr)
        elif op == "store":
            mem.store_correct(addr)
        else:
            attrib.set_wrong_context(
                PROV_WRONG_PATH if block % 2 else PROV_WRONG_THREAD,
                pc=block,
            )
            mem.load_wrong(addr)
    summary = attrib.summary(instructions=max(1, len(ops)))
    per_source = summary["per_source"]
    for prov in SPECULATIVE_PROVS:
        src = per_source[PROV_NAMES[prov]]
        assert src["fills"] == (
            src["useful"] + src["late"] + src["unused"]
            + src["polluting"] + src["open"]
        ), (kind, PROV_NAMES[prov], src)
    totals = summary["totals"]
    # Demand fills are born used, so they never appear in the closed
    # classes; the grand total must balance the same way.
    spec_fills = totals["fills"] - totals["demand_fills"]
    assert spec_fills == (
        totals["useful"] + totals["late"] + totals["unused"]
        + totals["polluting"] + totals["open"]
    )
    # Pollution misses are demand misses, so they can never exceed the
    # demand fills that were observed charging them.
    assert totals["pollution_misses"] <= totals["demand_fills"]


@pytest.mark.parametrize("kind", ALL_KINDS)
@settings(max_examples=20, deadline=None)
@given(ops=OPS)
def test_attribution_never_perturbs_the_hierarchy(kind, ops):
    """An attached collector observes; it must not change residency or
    counters (the bit-identity guarantee at the component level)."""
    plain = make_system(kind)
    drive(plain, ops)
    observed = make_system(kind, attrib=AttributionCollector())
    drive(observed, ops)
    assert plain.stats.as_dict() == observed.stats.as_dict()
    assert {b for b, _ in plain.l1d.resident_blocks()} == {
        b for b, _ in observed.l1d.resident_blocks()
    }


@settings(max_examples=30, deadline=None)
@given(ops=OPS)
def test_l2_sees_only_misses(ops):
    mem = make_system(SidecarKind.WEC)
    drive(mem, ops)
    l2 = mem.l2.stats
    # The L2 access count must equal fills + wrong fills + prefetches
    # (no path reaches the L2 on an L1/sidecar hit).
    expected = (
        mem.stats["demand_fills"]
        + mem.stats["wrong_fills"]
        + mem.stats["prefetches"]
    )
    assert l2["accesses"] == expected
