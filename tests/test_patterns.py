"""Tests for the deterministic address-pattern generators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import WorkloadError
from repro.workloads.patterns import (
    HotColdPattern,
    PointerChasePattern,
    RandomPattern,
    SequentialPattern,
    StridedPattern,
    mix64,
)

KB = 1024


class TestMix64:
    def test_deterministic(self):
        assert mix64(1, 2, 3) == mix64(1, 2, 3)

    def test_sensitive_to_each_argument(self):
        base = mix64(1, 2, 3)
        assert base != mix64(2, 2, 3)
        assert base != mix64(1, 3, 3)
        assert base != mix64(1, 2, 4)

    def test_64bit_range(self):
        for args in [(0, 0, 0), (2**40, 2**40, 2**40)]:
            assert 0 <= mix64(*args) < 2**64

    @given(st.integers(0, 2**32), st.integers(0, 2**32), st.integers(0, 2**32))
    def test_always_in_range(self, a, b, c):
        assert 0 <= mix64(a, b, c) < 2**64


class TestStagger:
    def test_stagger_offsets_base(self):
        p1 = SequentialPattern("a", 0x1000, 4 * KB, stagger=True)
        p2 = SequentialPattern("a", 0x1000, 4 * KB, stagger=False)
        assert p2.base == 0x1000
        assert p1.base >= 0x1000
        assert (p1.base - 0x1000) % 128 == 0  # L2-block multiples

    def test_distinct_names_distinct_offsets(self):
        bases = {
            SequentialPattern(f"arr{i}", 0, 4 * KB).base for i in range(30)
        }
        assert len(bases) > 25  # staggering spreads starting sets


def all_pattern_instances():
    return [
        SequentialPattern("s", 0x1000, 8 * KB, stride=8, per_iter=16, stagger=False),
        StridedPattern("t", 0x1000, 8 * KB, stride=256, per_iter=4, stagger=False),
        RandomPattern("r", 0x1000, 8 * KB, granule=8, salt=5, stagger=False),
        PointerChasePattern("c", 0x1000, n_nodes=64, node_size=64, per_iter=4,
                            stagger=False),
        HotColdPattern("h", 0x1000, hot_size=1 * KB, cold_size=7 * KB,
                       p_hot=0.8, stagger=False),
    ]


@pytest.mark.parametrize("pat", all_pattern_instances(), ids=lambda p: p.name)
class TestCommonProperties:
    def test_deterministic(self, pat):
        assert pat.addr(3, 7) == pat.addr(3, 7)

    def test_addresses_within_region(self, pat):
        for it in (0, 1, 17, 10_000):
            for occ in (0, 1, 33):
                a = pat.addr(it, occ)
                assert pat.base <= a < pat.base + pat.size

    def test_footprint(self, pat):
        assert pat.footprint_bytes == pat.size

    def test_repr(self, pat):
        assert pat.name in repr(pat)


class TestSequentialPattern:
    def test_advances_by_stride(self):
        p = SequentialPattern("s", 0, 1 * KB, stride=8, per_iter=4, stagger=False)
        assert p.addr(0, 0) == 0
        assert p.addr(0, 1) == 8
        assert p.addr(1, 0) == 32  # per_iter * stride

    def test_wraps(self):
        p = SequentialPattern("s", 0, 64, stride=8, per_iter=4, stagger=False)
        assert p.addr(2, 0) == p.addr(0, 0)  # 8 elements: wraps at iter 2

    def test_iteration_continuity(self):
        """Iteration i+1 continues exactly where i's per_iter window ends —
        the property wrong-thread extrapolation relies on."""
        p = SequentialPattern("s", 0, 64 * KB, stride=8, per_iter=4, stagger=False)
        assert p.addr(5, 0) == p.addr(4, 4)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            SequentialPattern("s", 0, 64, stride=0)
        with pytest.raises(WorkloadError):
            SequentialPattern("s", 0, 0)
        with pytest.raises(WorkloadError):
            SequentialPattern("s", -1, 64)


class TestRandomPattern:
    def test_granule_alignment(self):
        p = RandomPattern("r", 0, 4 * KB, granule=32, stagger=False)
        for occ in range(50):
            assert p.addr(0, occ) % 32 == 0

    def test_salt_decorrelates(self):
        a = RandomPattern("r", 0, 64 * KB, granule=8, salt=1, stagger=False)
        b = RandomPattern("r", 0, 64 * KB, granule=8, salt=2, stagger=False)
        same = sum(a.addr(0, o) == b.addr(0, o) for o in range(100))
        assert same < 10

    def test_coverage_is_roughly_uniform(self):
        p = RandomPattern("r", 0, 1 * KB, granule=64, stagger=False)  # 16 slots
        seen = {p.addr(i, o) for i in range(50) for o in range(10)}
        assert len(seen) == 16  # all slots hit with 500 draws


class TestPointerChase:
    def test_visits_follow_permutation(self):
        p = PointerChasePattern("c", 0, n_nodes=16, node_size=64, per_iter=4,
                                seed=3, stagger=False)
        walk = [p.addr(0, o) for o in range(16)]
        assert len(set(walk)) == 16  # a full cycle visits every node once

    def test_low_spatial_locality(self):
        p = PointerChasePattern("c", 0, n_nodes=256, node_size=64, per_iter=8,
                                stagger=False)
        seq_pairs = sum(
            abs(p.addr(0, o + 1) - p.addr(0, o)) == 64 for o in range(100)
        )
        assert seq_pairs < 10

    def test_same_seed_same_walk(self):
        a = PointerChasePattern("c", 0, 64, per_iter=4, seed=9, stagger=False)
        b = PointerChasePattern("c", 0, 64, per_iter=4, seed=9, stagger=False)
        assert all(a.addr(2, o) == b.addr(2, o) for o in range(20))

    def test_extrapolation_matches_future(self):
        """Wrong-thread extrapolation: iteration n's addresses equal what
        the real iteration n would touch."""
        p = PointerChasePattern("c", 0, 128, per_iter=4, stagger=False)
        assert p.addr(100, 2) == p.addr(100, 2)
        # continuity across iterations
        assert p.addr(3, 4) == p.addr(4, 0)

    def test_bad_geometry(self):
        with pytest.raises(WorkloadError):
            PointerChasePattern("c", 0, 0)


class TestHotCold:
    def test_hot_fraction(self):
        p = HotColdPattern("h", 0, hot_size=1 * KB, cold_size=63 * KB,
                           p_hot=0.9, stagger=False)
        hot = sum(p.addr(i, o) < 1 * KB for i in range(40) for o in range(25))
        assert 0.85 < hot / 1000 < 0.95

    def test_p_hot_zero_and_one(self):
        hot0 = HotColdPattern("h", 0, 1 * KB, 1 * KB, p_hot=0.0, stagger=False)
        assert all(hot0.addr(0, o) >= 1 * KB for o in range(50))
        hot1 = HotColdPattern("h", 0, 1 * KB, 1 * KB, p_hot=1.0, stagger=False)
        assert all(hot1.addr(0, o) < 1 * KB for o in range(50))

    def test_validation(self):
        with pytest.raises(WorkloadError):
            HotColdPattern("h", 0, 0, 1 * KB)
        with pytest.raises(WorkloadError):
            HotColdPattern("h", 0, 1 * KB, 1 * KB, p_hot=1.5)


@settings(max_examples=40, deadline=None)
@given(
    it=st.integers(min_value=0, max_value=10**7),
    occ=st.integers(min_value=0, max_value=10**5),
)
def test_all_patterns_stay_in_bounds(it, occ):
    for pat in all_pattern_instances():
        a = pat.addr(it, occ)
        assert pat.base <= a < pat.base + pat.size
