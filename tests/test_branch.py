"""Tests for branch predictors, BTB, RAS and the front-end unit."""

from __future__ import annotations

import numpy as np
import pytest

from repro.branch.btb import BranchTargetBuffer
from repro.branch.frontend import BranchUnit
from repro.branch.predictors import (
    BimodalPredictor,
    CombiningPredictor,
    GsharePredictor,
    TwoLevelPredictor,
    make_predictor,
)
from repro.branch.ras import ReturnAddressStack
from repro.common.config import BranchPredictorConfig
from repro.common.errors import ConfigError

ALL_PREDICTORS = [
    lambda: BimodalPredictor(10),
    lambda: GsharePredictor(10),
    lambda: TwoLevelPredictor(10),
    lambda: CombiningPredictor(10),
]


@pytest.mark.parametrize("factory", ALL_PREDICTORS)
class TestPredictorsCommon:
    def test_learns_always_taken(self, factory):
        p = factory()
        pc = 0x1000
        for _ in range(8):
            p.update(pc, True)
        assert p.predict(pc) is True

    def test_learns_never_taken(self, factory):
        p = factory()
        pc = 0x1000
        for _ in range(8):
            p.update(pc, False)
        assert p.predict(pc) is False

    def test_biased_branch_accuracy(self, factory):
        p = factory()
        rng = np.random.default_rng(0)
        pc = 0x2000
        correct = 0
        n = 2000
        for _ in range(n):
            taken = bool(rng.random() < 0.9)
            if p.predict(pc) == taken:
                correct += 1
            p.update(pc, taken)
        # Must approach the 90% bias (allow warm-up slack).
        assert correct / n > 0.82

    def test_reset_restores_weak_taken(self, factory):
        p = factory()
        pc = 0x3000
        for _ in range(8):
            p.update(pc, False)
        p.reset()
        assert p.predict(pc) is True  # counters re-initialised weak-taken

    def test_smoke_mixed_pcs(self, factory):
        p = factory()
        for _ in range(8):
            p.update(0x100, True)
            p.update(0x104, False)
        assert isinstance(p.predict(0x100), bool)


def test_bimodal_independent_pcs():
    # Per-PC counters: adjacent non-aliasing PCs train independently.
    # (gshare deliberately lacks this property — its index folds in the
    # global history, so it is excluded here.)
    p = BimodalPredictor(10)
    for _ in range(8):
        p.update(0x100, True)
        p.update(0x104, False)
    assert p.predict(0x100) is True
    assert p.predict(0x104) is False


class TestTwoLevelSpecifics:
    def test_learns_alternating_pattern(self):
        # Local history captures period-2 patterns bimodal cannot.
        p = TwoLevelPredictor(10, history_bits=8)
        pc = 0x1234
        outcomes = [bool(i % 2) for i in range(400)]
        correct = 0
        for t in outcomes:
            if p.predict(pc) == t:
                correct += 1
            p.update(pc, t)
        assert correct / len(outcomes) > 0.9

    def test_bimodal_fails_alternating(self):
        p = BimodalPredictor(10)
        pc = 0x1234
        correct = 0
        for i in range(400):
            t = bool(i % 2)
            if p.predict(pc) == t:
                correct += 1
            p.update(pc, t)
        assert correct / 400 < 0.7


class TestMakePredictor:
    @pytest.mark.parametrize("kind", ["bimodal", "gshare", "twolevel", "combining"])
    def test_all_kinds(self, kind):
        p = make_predictor(BranchPredictorConfig(kind=kind))
        p.update(0x10, True)
        assert isinstance(p.predict(0x10), bool)

    def test_table_bits_range(self):
        with pytest.raises(ConfigError):
            BimodalPredictor(0)
        with pytest.raises(ConfigError):
            GsharePredictor(30)
        with pytest.raises(ConfigError):
            TwoLevelPredictor(10, history_bits=0)


class TestBTB:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(64, 4)
        assert btb.lookup(0x100) is None
        btb.insert(0x100, 0x900)
        assert btb.lookup(0x100) == 0x900
        assert btb.hits == 1 and btb.misses == 1

    def test_lru_eviction_within_set(self):
        btb = BranchTargetBuffer(8, 2)  # 4 sets, 2-way
        n_sets = 4
        # Three PCs mapping to the same set (pc>>2 % 4 == 0).
        pcs = [0x0, 0x0 + 4 * n_sets, 0x0 + 8 * n_sets]
        btb.insert(pcs[0], 1)
        btb.insert(pcs[1], 2)
        btb.lookup(pcs[0])        # refresh pcs[0] -> pcs[1] is LRU
        btb.insert(pcs[2], 3)     # evicts pcs[1]
        assert btb.lookup(pcs[0]) == 1
        assert btb.lookup(pcs[1]) is None
        assert btb.lookup(pcs[2]) == 3

    def test_update_existing(self):
        btb = BranchTargetBuffer(8, 2)
        btb.insert(0x40, 0x1)
        btb.insert(0x40, 0x2)
        assert btb.lookup(0x40) == 0x2
        assert btb.occupancy() == 1

    def test_bad_geometry(self):
        with pytest.raises(ConfigError):
            BranchTargetBuffer(10, 4)
        with pytest.raises(ConfigError):
            BranchTargetBuffer(0, 1)

    def test_reset(self):
        btb = BranchTargetBuffer(8, 2)
        btb.insert(0x40, 1)
        btb.reset()
        assert btb.occupancy() == 0
        assert btb.lookup(0x40) is None
        assert btb.misses == 1  # the post-reset lookup


class TestRAS:
    def test_push_pop(self):
        ras = ReturnAddressStack(4)
        ras.push(0x10)
        ras.push(0x20)
        assert ras.pop() == 0x20
        assert ras.pop() == 0x10

    def test_underflow(self):
        ras = ReturnAddressStack(2)
        assert ras.pop() is None
        assert ras.underflows == 1

    def test_wrap_loses_oldest(self):
        ras = ReturnAddressStack(2)
        for v in (1, 2, 3):
            ras.push(v)
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None  # 1 was overwritten

    def test_peek(self):
        ras = ReturnAddressStack(2)
        assert ras.peek() is None
        ras.push(9)
        assert ras.peek() == 9
        assert len(ras) == 1

    def test_reset(self):
        ras = ReturnAddressStack(2)
        ras.push(1)
        ras.reset()
        assert len(ras) == 0 and ras.pushes == 0

    def test_zero_depth_rejected(self):
        with pytest.raises(ConfigError):
            ReturnAddressStack(0)


class TestBranchUnit:
    def test_counts_branches_and_mispredicts(self):
        bu = BranchUnit(BranchPredictorConfig(kind="bimodal"))
        rng = np.random.default_rng(0)
        for _ in range(500):
            bu.resolve(0x100, bool(rng.random() < 0.95))
        assert bu.stats["branches"] == 500
        assert 0.0 < bu.mispredict_rate() < 0.2

    def test_btb_target_miss_counts_as_mispredict(self):
        bu = BranchUnit(BranchPredictorConfig(kind="bimodal"))
        # Train taken so the direction is predicted taken, then clear
        # the BTB: correct direction + unknown target = redirect.
        for _ in range(4):
            bu.resolve(0x100, True)
        bu.btb.reset()
        before = bu.stats["mispredicts"]
        assert bu.resolve(0x100, True) is True
        assert bu.stats["btb_target_misses"] >= 1
        assert bu.stats["mispredicts"] == before + 1

    def test_mispredict_penalty_exposed(self):
        bu = BranchUnit(BranchPredictorConfig(mispredict_penalty=9))
        assert bu.mispredict_penalty == 9

    def test_reset(self):
        bu = BranchUnit(BranchPredictorConfig())
        bu.resolve(0x100, True)
        bu.reset()
        assert bu.stats["branches"] == 0

    def test_perfectly_biased_branch_low_mispredicts(self):
        bu = BranchUnit(BranchPredictorConfig(kind="bimodal"))
        for _ in range(100):
            bu.resolve(0x200, True)
        # After warm-up, all predictions correct (taken, BTB warm).
        assert bu.stats["mispredicts"] <= 3
