"""Tests for service & fleet telemetry (:mod:`repro.obs.telemetry`).

Four layers:

* **Registry** — counter/gauge/histogram semantics, declaration
  conflicts, exact-label enforcement, the bounded-cardinality overflow
  series, snapshot determinism and the Prometheus text rendering.
* **Logs & spans** — StructuredLog JSONL emission with bound
  correlation fields, the NullLog no-op, SpanLog drop-oldest capacity,
  and the Perfetto service-trace export.
* **Executor integration** — ``run_cells`` emitting the shared signal
  set (per-layer dedup counts, latency histogram, queue-depth gauge)
  and embedding the final snapshot in the sweep manifest.
* **The prime directive** — telemetry-enabled runs are bit-identical
  to telemetry-off runs across the config ladder, and DiskCache
  eviction totals survive process boundaries via the sidecar without
  double-counting into fresh registries.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import SimParams, named_config
from repro.obs.export import SERVICE_PID, service_trace, write_service_trace
from repro.obs.telemetry import (
    LATENCY_BUCKETS_S,
    M_CACHE_EVICTIONS,
    M_CACHE_EVICTED_BYTES,
    M_CACHE_PRUNE_PASSES,
    M_CELL_LATENCY,
    M_CELLS_TOTAL,
    M_QUEUE_DEPTH,
    MAX_SERIES_PER_METRIC,
    METRIC_NAMES,
    MetricsRegistry,
    NullLog,
    OVERFLOW_LABEL,
    SpanLog,
    StructuredLog,
    TELEMETRY_SCHEMA_VERSION,
    TelemetryError,
    snapshot_hist,
    snapshot_total,
    snapshot_value,
    standard_registry,
)
from repro.sim.executor import DiskCache, SweepCell, run_cell, run_cells
from repro.sim.sweep import run_grid

TINY = SimParams(seed=7, scale=2e-5, warmup_invocations=0)

#: The full wrong-execution ladder the diff CLI pins down.
LADDER = ["orig", "wp", "wth", "wth-wp", "wth-wp-wec", "vc", "nlp",
          "stream-pf"]


@pytest.fixture(autouse=True)
def _no_ambient_cache(monkeypatch):
    for var in ("REPRO_CACHE_DIR", "REPRO_CACHE_MAX_MB", "REPRO_PERF_DIR",
                "REPRO_ENGINE", "REPRO_SANITIZE"):
        monkeypatch.delenv(var, raising=False)


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_counter_inc_and_value(self):
        reg = MetricsRegistry()
        reg.counter("t_total", "help", labels=("kind",))
        reg.inc("t_total", kind="a")
        reg.inc("t_total", 2, kind="a")
        reg.inc("t_total", kind="b")
        assert reg.value("t_total", kind="a") == 3.0
        assert reg.value("t_total", kind="b") == 1.0
        assert reg.value("t_total", kind="never") == 0.0

    def test_counter_is_monotonic(self):
        reg = MetricsRegistry()
        reg.counter("t_total")
        with pytest.raises(TelemetryError, match="monotonic"):
            reg.inc("t_total", -1)

    def test_gauge_set(self):
        reg = MetricsRegistry()
        reg.gauge("t_depth")
        reg.set_gauge("t_depth", 5)
        reg.set_gauge("t_depth", 2)
        assert reg.value("t_depth") == 2.0

    def test_undeclared_metric_raises(self):
        reg = MetricsRegistry()
        with pytest.raises(TelemetryError, match="never declared"):
            reg.inc("nope_total")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("t_total")
        with pytest.raises(TelemetryError, match="is a counter"):
            reg.set_gauge("t_total", 1)

    def test_label_set_is_exact(self):
        reg = MetricsRegistry()
        reg.counter("t_total", labels=("kind",))
        with pytest.raises(TelemetryError, match="declared labels"):
            reg.inc("t_total")
        with pytest.raises(TelemetryError, match="declared labels"):
            reg.inc("t_total", kind="a", extra="b")

    def test_identical_redeclare_is_idempotent(self):
        reg = MetricsRegistry()
        reg.counter("t_total", "help", labels=("kind",))
        reg.counter("t_total", "other help text", labels=("kind",))
        reg.inc("t_total", kind="a")
        assert reg.value("t_total", kind="a") == 1.0

    def test_conflicting_redeclare_raises(self):
        reg = MetricsRegistry()
        reg.counter("t_total", labels=("kind",))
        with pytest.raises(TelemetryError, match="re-declared"):
            reg.gauge("t_total")
        with pytest.raises(TelemetryError, match="re-declared"):
            reg.counter("t_total", labels=("other",))

    def test_histogram_buckets_must_increase(self):
        reg = MetricsRegistry()
        with pytest.raises(TelemetryError, match="strictly increasing"):
            reg.histogram("t_seconds", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(TelemetryError, match="needs buckets"):
            reg.histogram("t_seconds", buckets=())

    def test_histogram_observation_slots(self):
        reg = MetricsRegistry()
        reg.histogram("t_seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.1, 0.5, 2.0):  # <=0.1, ==0.1, <=1.0, +Inf
            reg.observe("t_seconds", v)
        doc = reg.snapshot()["metrics"]["t_seconds"]
        series = doc["series"][0]
        assert series["counts"] == [2, 1, 1]
        assert series["count"] == 4
        assert series["sum"] == pytest.approx(2.65)

    def test_histogram_value_read_raises(self):
        reg = MetricsRegistry()
        reg.histogram("t_seconds", buckets=(1.0,))
        with pytest.raises(TelemetryError, match="histogram"):
            reg.value("t_seconds")

    def test_cardinality_overflow_collapses(self):
        reg = MetricsRegistry()
        reg.counter("t_total", labels=("who",))
        for i in range(MAX_SERIES_PER_METRIC + 10):
            reg.inc("t_total", who=f"tenant-{i}")
        doc = reg.snapshot()["metrics"]["t_total"]
        assert len(doc["series"]) == MAX_SERIES_PER_METRIC + 1
        overflow = [s for s in doc["series"]
                    if s["labels"]["who"] == OVERFLOW_LABEL]
        assert len(overflow) == 1
        assert overflow[0]["value"] == 10.0
        # Nothing is lost: total across series is every inc.
        assert snapshot_total(reg.snapshot(), "t_total") == (
            MAX_SERIES_PER_METRIC + 10)

    def test_snapshot_is_sorted_and_json_round_trips(self):
        reg = standard_registry()
        reg.inc(M_CELLS_TOTAL, source="run")
        reg.inc(M_CELLS_TOTAL, source="cache")
        snap = reg.snapshot()
        assert snap["schema"] == TELEMETRY_SCHEMA_VERSION
        assert list(snap["metrics"]) == sorted(snap["metrics"])
        sources = [s["labels"]["source"]
                   for s in snap["metrics"][M_CELLS_TOTAL]["series"]]
        assert sources == sorted(sources)
        assert json.loads(json.dumps(snap)) == snap

    def test_standard_registry_declares_the_whole_signal_set(self):
        snap = standard_registry().snapshot()
        assert set(snap["metrics"]) == set(METRIC_NAMES)

    def test_prometheus_rendering(self):
        reg = standard_registry()
        reg.inc(M_CELLS_TOTAL, 3, source="run")
        reg.set_gauge(M_QUEUE_DEPTH, 7)
        reg.observe(M_CELL_LATENCY, 0.003, benchmark="181.mcf",
                    engine="fast")
        reg.observe(M_CELL_LATENCY, 999.0, benchmark="181.mcf",
                    engine="fast")
        text = reg.render_prometheus()
        assert f"# TYPE {M_CELLS_TOTAL} counter" in text
        assert f'{M_CELLS_TOTAL}{{source="run"}} 3' in text
        assert f"{M_QUEUE_DEPTH} 7" in text
        # Cumulative buckets: every bound holds the 3ms observation,
        # +Inf holds both.
        assert (f'{M_CELL_LATENCY}_bucket{{benchmark="181.mcf",'
                f'engine="fast",le="0.005"}} 1') in text
        assert (f'{M_CELL_LATENCY}_bucket{{benchmark="181.mcf",'
                f'engine="fast",le="+Inf"}} 2') in text
        assert (f'{M_CELL_LATENCY}_count{{benchmark="181.mcf",'
                f'engine="fast"}} 2') in text
        assert text.endswith("\n")

    def test_prometheus_escapes_label_values(self):
        reg = MetricsRegistry()
        reg.counter("t_total", labels=("who",))
        reg.inc("t_total", who='a"b\\c\nd')
        assert '{who="a\\"b\\\\c\\nd"}' in reg.render_prometheus()

    def test_snapshot_readers(self):
        reg = standard_registry()
        reg.inc(M_CELLS_TOTAL, 2, source="run")
        reg.inc(M_CELLS_TOTAL, 5, source="cache")
        reg.observe(M_CELL_LATENCY, 1.5, benchmark="b", engine="fast")
        snap = reg.snapshot()
        assert snapshot_value(snap, M_CELLS_TOTAL, {"source": "run"}) == 2.0
        assert snapshot_value(snap, M_CELLS_TOTAL, {"source": "nope"}) == 0.0
        assert snapshot_value(snap, "never_declared") == 0.0
        assert snapshot_total(snap, M_CELLS_TOTAL) == 7.0
        assert snapshot_hist(snap, M_CELL_LATENCY) == (1, 1.5)
        assert snapshot_hist(snap, M_CELLS_TOTAL) == (0, 0.0)


# ---------------------------------------------------------------------------
# structured logs and spans
# ---------------------------------------------------------------------------


class TestStructuredLog:
    def test_events_are_jsonl_with_bound_fields(self, tmp_path):
        path = tmp_path / "log" / "serve.jsonl"
        log = StructuredLog(path=path)
        child = log.bind(job_id="j0001", tenant="ci")
        child.event("cell.resolved", cell="175.vpr/orig", source="run")
        log.event("job.done", state="done")
        log.close()
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert len(lines) == 2
        assert lines[0]["event"] == "cell.resolved"
        assert lines[0]["job_id"] == "j0001"
        assert lines[0]["tenant"] == "ci"
        assert lines[0]["source"] == "run"
        assert "ts" in lines[0]
        # The parent logger never inherited the child's bound fields.
        assert "job_id" not in lines[1]

    def test_bind_chains_and_call_fields_win(self, tmp_path):
        path = tmp_path / "serve.jsonl"
        log = StructuredLog(path=path).bind(worker="w1").bind(job_id="j2")
        log.event("x", worker="w9")
        log.close()
        record = json.loads(path.read_text())
        assert record["worker"] == "w9"
        assert record["job_id"] == "j2"

    def test_append_mode_across_instances(self, tmp_path):
        path = tmp_path / "serve.jsonl"
        StructuredLog(path=path).event("a")
        StructuredLog(path=path).event("b")
        events = [json.loads(l)["event"]
                  for l in path.read_text().splitlines()]
        assert events == ["a", "b"]

    def test_null_log_is_inert(self):
        log = NullLog()
        assert log.bind(job_id="x") is log
        log.event("anything", n=1)
        log.close()


class TestSpanLog:
    def span(self, i=0, worker="w1"):
        return dict(job_id="j0001", index=i, benchmark="175.vpr",
                    label="orig", worker=worker, source="run",
                    start_s=100.0 + i, end_s=100.5 + i, attempts=0)

    def test_capacity_drops_oldest(self):
        spans = SpanLog(capacity=2)
        for i in range(3):
            spans.add(**self.span(i))
        assert len(spans) == 2
        wire = spans.to_wire()
        assert wire["n_dropped"] == 1
        assert [s["index"] for s in wire["spans"]] == [1, 2]

    def test_capacity_must_be_positive(self):
        with pytest.raises(TelemetryError, match="capacity"):
            SpanLog(capacity=0)

    def test_service_trace_export(self):
        spans = SpanLog()
        spans.add(**self.span(0, worker="w1"))
        spans.add(**self.span(1, worker="w2"))
        doc = service_trace(spans.to_wire()["spans"], label="test")
        assert doc["otherData"]["n_spans"] == 2
        events = doc["traceEvents"]
        names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert {"repro serve workers", "worker w1", "worker w2"} <= names
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == 2
        assert all(e["pid"] == SERVICE_PID for e in xs)
        # Normalized to the earliest span; 1 us = 1 host us.
        assert xs[0]["ts"] == 0.0
        assert xs[0]["dur"] == pytest.approx(0.5e6)
        assert xs[1]["ts"] == pytest.approx(1e6)
        assert xs[0]["name"] == "175.vpr/orig"
        assert {xs[0]["tid"], xs[1]["tid"]} == {1, 2}

    def test_write_service_trace(self, tmp_path):
        spans = SpanLog()
        spans.add(**self.span())
        out = write_service_trace(spans.to_wire()["spans"],
                                  tmp_path / "svc.json")
        doc = json.loads(out.read_text())
        assert doc["otherData"]["clock"] == "1 trace us = 1 host microsecond"


# ---------------------------------------------------------------------------
# executor integration
# ---------------------------------------------------------------------------


def tiny_cells(labels=("orig", "vc"), benches=("175.vpr",)):
    return [SweepCell(b, name, named_config(name), TINY)
            for b in benches for name in labels]


class TestExecutorTelemetry:
    def test_run_cells_emits_the_signal_set(self, tmp_path):
        reg = standard_registry()
        log_path = tmp_path / "sweep.jsonl"
        outcome = run_cells(tiny_cells(), cache_dir=tmp_path / "cache",
                            engine="fast", telemetry=reg,
                            log=StructuredLog(path=log_path))
        snap = outcome.stats.telemetry
        assert snap is not None
        assert snapshot_value(snap, M_CELLS_TOTAL, {"source": "run"}) == 2.0
        assert snapshot_value(snap, M_CELLS_TOTAL, {"source": "cache"}) == 0.0
        assert snapshot_hist(snap, M_CELL_LATENCY)[0] == 2
        assert snapshot_value(snap, M_QUEUE_DEPTH) == 0.0
        events = [json.loads(l)["event"]
                  for l in log_path.read_text().splitlines()]
        assert events.count("cell.resolved") == 2
        assert events[-1] == "sweep.done"

        # Warm re-run: every cell lands in the cache layer.
        outcome2 = run_cells(tiny_cells(), cache_dir=tmp_path / "cache",
                             engine="fast")
        snap2 = outcome2.stats.telemetry
        assert snapshot_value(snap2, M_CELLS_TOTAL, {"source": "cache"}) == 2.0
        assert snapshot_value(snap2, M_CELLS_TOTAL, {"source": "run"}) == 0.0
        assert snapshot_hist(snap2, M_CELL_LATENCY)[0] == 0

    def test_manifest_embeds_snapshot(self, tmp_path):
        manifest = tmp_path / "manifest.json"
        run_cells(tiny_cells(labels=("orig",)), cache_dir=tmp_path / "cache",
                  engine="fast", manifest_path=manifest)
        doc = json.loads(manifest.read_text())
        snap = doc["telemetry"]
        assert snap["schema"] == TELEMETRY_SCHEMA_VERSION
        assert snapshot_total(snap, M_CELLS_TOTAL) == doc["n_cells"] == 1

    def test_layer_counts_sum_to_cell_count(self, tmp_path):
        # Half the grid pre-warmed: cache + run must sum to n_cells.
        run_cells(tiny_cells(labels=("orig",)), cache_dir=tmp_path / "cache",
                  engine="fast")
        outcome = run_cells(tiny_cells(labels=("orig", "vc")),
                            cache_dir=tmp_path / "cache", engine="fast")
        snap = outcome.stats.telemetry
        assert snapshot_value(snap, M_CELLS_TOTAL, {"source": "cache"}) == 1.0
        assert snapshot_value(snap, M_CELLS_TOTAL, {"source": "run"}) == 1.0
        assert snapshot_total(snap, M_CELLS_TOTAL) == 2.0

    def test_failed_cells_count_in_failed_layer(self, tmp_path):
        cells = tiny_cells(labels=("orig",)) + [
            SweepCell("nosuch.bench", "orig", named_config("orig"), TINY)
        ]
        outcome = run_cells(cells, cache=False, engine="fast", strict=False)
        snap = outcome.stats.telemetry
        assert snapshot_value(snap, M_CELLS_TOTAL, {"source": "failed"}) == 1.0
        assert snapshot_value(snap, M_CELLS_TOTAL, {"source": "run"}) == 1.0

    def test_telemetry_runs_are_bit_identical(self, tmp_path):
        # The prime directive: observers never perturb results, across
        # the full wrong-execution ladder.
        configs = {name: named_config(name) for name in LADDER}
        plain = run_grid(configs, benchmarks=["175.vpr"], params=TINY,
                         cache=False, engine="fast")
        reg = standard_registry()
        logged = run_grid(configs, benchmarks=["175.vpr"], params=TINY,
                          cache=False, engine="fast", telemetry=reg,
                          log=StructuredLog(path=tmp_path / "t.jsonl"))
        assert set(plain) == set(logged)
        for key in plain:
            assert plain[key].to_dict() == logged[key].to_dict(), key
        # And the telemetry did actually record the run.
        assert reg.value(M_CELLS_TOTAL, source="run") == len(LADDER)


# ---------------------------------------------------------------------------
# cache eviction totals (sidecar + registry sync)
# ---------------------------------------------------------------------------


class TestEvictionTotals:
    def fill(self, cache, result, n=6):
        keys = [f"{i:02x}" + "9" * 62 for i in range(n)]
        for age, key in enumerate(keys):
            cache.put(key, result)
            os.utime(cache._path(key), (1_000_000 + age, 1_000_000 + age))
        return keys

    def entry_mb(self, cache):
        return cache.stats().total_bytes / len(cache) / (1024 * 1024)

    def test_prune_updates_sidecar_and_registry(self, tmp_path):
        reg = standard_registry()
        cache = DiskCache(tmp_path, registry=reg)
        result = run_cell("175.vpr", named_config("orig"), TINY, cache=False)
        self.fill(cache, result)
        pruned = cache.prune(self.entry_mb(cache) * 2.5)
        assert pruned.removed == 4
        assert reg.value(M_CACHE_PRUNE_PASSES) == 1.0
        assert reg.value(M_CACHE_EVICTIONS) == 4.0
        assert reg.value(M_CACHE_EVICTED_BYTES) == pruned.freed_bytes
        stats = cache.stats()
        assert stats.prune_passes == 1
        assert stats.evicted_entries == 4
        assert stats.evicted_bytes == pruned.freed_bytes
        assert stats.last_prune_ts is not None
        assert stats.to_dict()["evicted_entries"] == 4

    def test_sidecar_never_counted_as_an_entry(self, tmp_path):
        cache = DiskCache(tmp_path)
        result = run_cell("175.vpr", named_config("orig"), TINY, cache=False)
        self.fill(cache, result, n=3)
        cache.prune(self.entry_mb(cache) * 1.5)  # writes the sidecar
        assert cache.stats().entries == 1
        # A full prune-to-zero must not evict the totals file.
        cache.prune(0.0)
        assert cache.eviction_totals()["prune_passes"] == 2

    def test_totals_persist_without_historical_double_count(self, tmp_path):
        cache1 = DiskCache(tmp_path)
        result = run_cell("175.vpr", named_config("orig"), TINY, cache=False)
        self.fill(cache1, result)
        cache1.prune(self.entry_mb(cache1) * 2.5)

        # A fresh instance sees the lifetime totals...
        reg = standard_registry()
        cache2 = DiskCache(tmp_path, registry=reg)
        assert cache2.stats().evicted_entries == 4
        # ...but its registry baseline starts *now*: historical
        # evictions never inflate a new registry's counters.
        cache2.sync_telemetry()
        assert reg.value(M_CACHE_EVICTIONS) == 0.0

        self.fill(cache2, result)
        cache2.prune(self.entry_mb(cache2) * 2.5)
        assert reg.value(M_CACHE_EVICTIONS) == 4.0
        assert cache2.stats().evicted_entries == 8

    def test_log_event_on_prune(self, tmp_path):
        log_path = tmp_path / "log.jsonl"
        cache = DiskCache(tmp_path / "cache",
                          log=StructuredLog(path=log_path))
        result = run_cell("175.vpr", named_config("orig"), TINY, cache=False)
        self.fill(cache, result, n=4)
        cache.prune(self.entry_mb(cache) * 1.5)
        records = [json.loads(l) for l in log_path.read_text().splitlines()]
        prunes = [r for r in records if r["event"] == "cache.prune"]
        assert len(prunes) == 1
        assert prunes[0]["removed"] == 3
        assert prunes[0]["freed_bytes"] > 0
