"""End-to-end integration tests: paper-level behaviours must hold.

These run real benchmark models (at a reduced scale) through full
machine configurations and assert the *qualitative* results the paper
reports — the same shape checks EXPERIMENTS.md records at full scale.
"""

from __future__ import annotations

import pytest

from repro.common.config import CacheConfig, SimParams
from repro.sim.driver import run_program, run_simulation
from repro.sta.configs import named_config, table3_config
from repro.workloads.benchmarks import build_benchmark

SCALE = 1e-4
PARAMS = SimParams(seed=2003, scale=SCALE)


@pytest.fixture(scope="module")
def mcf_runs():
    prog = build_benchmark("181.mcf", SCALE)
    return {
        name: run_program(prog, named_config(name), PARAMS)
        for name in ("orig", "vc", "wth-wp", "wth-wp-wec", "nlp")
    }


class TestHeadlineResults:
    def test_wec_speeds_up_mcf_substantially(self, mcf_runs):
        pct = mcf_runs["wth-wp-wec"].relative_speedup_pct_vs(mcf_runs["orig"])
        assert pct > 8.0  # paper: 18.5% at full scale

    def test_wec_beats_victim_cache(self, mcf_runs):
        wec = mcf_runs["wth-wp-wec"].relative_speedup_pct_vs(mcf_runs["orig"])
        vc = mcf_runs["vc"].relative_speedup_pct_vs(mcf_runs["orig"])
        assert wec > vc + 3.0

    def test_wec_beats_nlp_on_pointer_chasing(self, mcf_runs):
        wec = mcf_runs["wth-wp-wec"].relative_speedup_pct_vs(mcf_runs["orig"])
        nlp = mcf_runs["nlp"].relative_speedup_pct_vs(mcf_runs["orig"])
        assert wec > nlp  # next-line prefetching cannot chase pointers

    def test_wrong_execution_alone_is_marginal(self, mcf_runs):
        """§5.2.2: wp/wth without a WEC give little benefit — pollution
        and port contention offset the prefetching."""
        wthwp = mcf_runs["wth-wp"].relative_speedup_pct_vs(mcf_runs["orig"])
        wec = mcf_runs["wth-wp-wec"].relative_speedup_pct_vs(mcf_runs["orig"])
        assert wthwp < wec / 2

    def test_wec_reduces_misses(self, mcf_runs):
        assert mcf_runs["wth-wp-wec"].miss_reduction_pct_vs(mcf_runs["orig"]) > 5.0

    def test_wrong_execution_increases_traffic(self, mcf_runs):
        assert mcf_runs["wth-wp-wec"].traffic_increase_pct_vs(mcf_runs["orig"]) > 5.0


class TestWorkloadInvariance:
    def test_correct_path_identical_across_configs(self, mcf_runs):
        """The same program must execute the same correct-path work on
        every machine configuration (the paper's same-binary premise)."""
        insns = {name: r.instructions for name, r in mcf_runs.items()}
        assert len(set(insns.values())) == 1
        branches = {name: r.branches for name, r in mcf_runs.items()}
        assert len(set(branches.values())) == 1

    def test_correct_loads_and_stores_identical(self, mcf_runs):
        def correct_traffic(r):
            return r.l1_traffic - r.wrong_loads

        vals = {correct_traffic(r) for r in mcf_runs.values()}
        assert len(vals) == 1


class TestSensitivities:
    def test_larger_l1_is_faster(self):
        prog = build_benchmark("197.parser", SCALE)
        times = []
        for kb in (4, 8, 32):
            cfg = named_config(
                "orig",
                l1d=CacheConfig(size=kb * 1024, assoc=1, block_size=64, name="l1d"),
            )
            times.append(run_program(prog, cfg, PARAMS).total_cycles)
        assert times[0] > times[-1]

    def test_vc_benefit_shrinks_with_associativity_wec_persists(self):
        """Figure 12: at 4-way associativity the victim cache's benefit
        largely disappears while the WEC still provides significant
        speedup."""
        prog = build_benchmark("164.gzip", SCALE)
        vc_gain = {}
        wec_gain = {}
        for assoc in (1, 4):
            l1 = CacheConfig(size=8 * 1024, assoc=assoc, block_size=64, name="l1d")
            base = run_program(prog, named_config("orig", l1d=l1), PARAMS)
            vc = run_program(prog, named_config("vc", l1d=l1), PARAMS)
            wec = run_program(prog, named_config("wth-wp-wec", l1d=l1), PARAMS)
            vc_gain[assoc] = vc.relative_speedup_pct_vs(base)
            wec_gain[assoc] = wec.relative_speedup_pct_vs(base)
        assert vc_gain[4] < vc_gain[1]
        assert wec_gain[4] > 3.0
        assert wec_gain[4] > vc_gain[4] + 2.0

    def test_bigger_wec_not_slower(self):
        prog = build_benchmark("181.mcf", SCALE)
        base = run_program(prog, named_config("orig"), PARAMS)
        small = run_program(prog, named_config("wth-wp-wec", sidecar_entries=4), PARAMS)
        big = run_program(prog, named_config("wth-wp-wec", sidecar_entries=16), PARAMS)
        assert big.relative_speedup_pct_vs(base) >= (
            small.relative_speedup_pct_vs(base) - 1.0
        )


class TestThreadScaling:
    def test_gzip_scales_with_tus(self):
        """Figure 8: gzip is TLP-rich — 16 single-issue TUs far exceed
        one 16-issue core on the parallelized portions."""
        prog = build_benchmark("164.gzip", SCALE)
        base = run_program(prog, table3_config(1, single_issue_baseline=True), PARAMS)
        wide = run_program(prog, table3_config(1), PARAMS)
        many = run_program(prog, table3_config(16), PARAMS)
        assert many.parallel_speedup_vs(base) > wide.parallel_speedup_vs(base)
        assert many.parallel_speedup_vs(base) > 8.0

    def test_vpr_prefers_ilp(self):
        """Figure 8: vpr is ILP-rich and TLP-poor — the wide core beats
        the 16-TU machine on the parallelized portions."""
        prog = build_benchmark("175.vpr", SCALE)
        base = run_program(prog, table3_config(1, single_issue_baseline=True), PARAMS)
        wide = run_program(prog, table3_config(1), PARAMS)
        many = run_program(prog, table3_config(16), PARAMS)
        assert wide.parallel_speedup_vs(base) > many.parallel_speedup_vs(base)

    def test_wec_gain_present_at_one_tu(self):
        """Figure 9: even a single TU benefits (wrong-path only)."""
        prog = build_benchmark("183.equake", SCALE)
        base = run_program(prog, named_config("orig", n_tus=1), PARAMS)
        wec = run_program(prog, named_config("wth-wp-wec", n_tus=1), PARAMS)
        assert wec.relative_speedup_pct_vs(base) > 0.0
