"""Tests for the pure-pattern microbenchmarks."""

from __future__ import annotations

import pytest

from repro.common.config import SimParams
from repro.common.errors import WorkloadError
from repro.sim.driver import run_program
from repro.sta.configs import named_config
from repro.workloads.microbench import MICROBENCH_NAMES, build_microbenchmark
from repro.workloads.patterns import (
    PointerChasePattern,
    RandomPattern,
    SequentialPattern,
)

PARAMS = SimParams(seed=4, scale=1.0, warmup_invocations=1)


class TestConstruction:
    @pytest.mark.parametrize("kind", MICROBENCH_NAMES)
    def test_builds(self, kind):
        prog = build_microbenchmark(kind, iters_per_invocation=40)
        assert prog.name == f"micro.{kind}"
        assert prog.parallel_regions and prog.sequential_regions

    def test_unknown_kind(self):
        with pytest.raises(WorkloadError):
            build_microbenchmark("zigzag")

    def test_too_few_iterations(self):
        with pytest.raises(WorkloadError):
            build_microbenchmark("stream", iters_per_invocation=2)

    def test_stream_is_sequential_pattern(self):
        prog = build_microbenchmark("stream", 40)
        region = prog.parallel_regions[0]
        assert isinstance(region.patterns["mb.data"], SequentialPattern)

    def test_chase_uses_wide_nodes(self):
        prog = build_microbenchmark("chase", 40)
        data = prog.parallel_regions[0].patterns["mb.data"]
        assert isinstance(data, PointerChasePattern)
        assert data.node_size == 128  # next-line prefetch gets nothing

    def test_random_is_random(self):
        prog = build_microbenchmark("random", 40)
        assert isinstance(
            prog.parallel_regions[0].patterns["mb.random"]
            if "mb.random" in prog.parallel_regions[0].patterns
            else prog.parallel_regions[0].patterns["mb.data"],
            RandomPattern,
        )

    def test_mixed_has_three_data_patterns(self):
        prog = build_microbenchmark("mixed", 40)
        pats = prog.parallel_regions[0].patterns
        assert {"mb.stream", "mb.chase", "mb.random"} <= set(pats)


class TestMechanismIsolation:
    """The microbenchmarks exist to separate mechanisms; check they do."""

    def _gain(self, kind, config):
        prog = build_microbenchmark(kind, iters_per_invocation=80)
        base = run_program(prog, named_config("orig"), PARAMS)
        new = run_program(prog, named_config(config), PARAMS)
        return new.relative_speedup_pct_vs(base)

    def test_chase_wec_beats_nlp(self):
        """Pointer chasing: wrong execution prefetches, next-line cannot."""
        wec = self._gain("chase", "wth-wp-wec")
        nlp = self._gain("chase", "nlp")
        assert wec > nlp + 2.0

    def test_stream_nlp_is_competitive(self):
        """Streaming: next-line prefetching works without speculation."""
        nlp = self._gain("stream", "nlp")
        assert nlp > 0.0

    def test_random_defeats_l1_prefetching(self):
        """Uniform random touches: next-line prefetches are never
        consumed from the buffer in time (any residual nlp gain is
        L2 warming of the dense region, not L1 hits)."""
        prog = build_microbenchmark("random", iters_per_invocation=80)
        base = run_program(prog, named_config("orig"), PARAMS)
        nlp = run_program(prog, named_config("nlp"), PARAMS)
        assert nlp.useful_prefetch_hits < 0.02 * base.effective_misses

    def test_wec_helps_every_kind(self):
        for kind in MICROBENCH_NAMES:
            assert self._gain(kind, "wth-wp-wec") > -1.0, kind
